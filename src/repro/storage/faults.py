"""Fault injection for crash-recovery testing.

A :class:`FaultInjector` counts the write operations flowing through the
storage stack — WAL record appends and data-page writes — and hard-stops the
store at a configured boundary:

* ``mode="before"`` — the Nth write is never performed (power fails just
  before the head moves);
* ``mode="after"`` — the Nth write completes, then the store dies (the
  classic "crash between two writes" boundary);
* ``mode="torn"`` — only a prefix of the Nth write reaches the medium (a
  torn page / torn log record; the WAL's trailer check must detect it).

A fired injector poisons the store: every subsequent write raises
:class:`~repro.errors.CrashError` too, so no code path can accidentally
continue past the simulated power loss. Tests abandon the crashed store
object and reopen from the on-disk files, which runs recovery.

Because the injected "crash" keeps the hosting process alive, bytes written
without an fsync still sit safely in OS buffers. :func:`lose_unsynced_wal`
simulates the missing power-loss semantics explicitly ("fsync lies"): it
truncates the WAL file back to the last offset an fsync actually covered,
destroying every record that was only buffered.
"""

from __future__ import annotations

import errno
import threading

from repro.errors import CrashError


class FaultInjector:
    """Deterministic crash at the Nth write operation.

    Args:
        crash_after: number of write operations allowed to complete; the
            next one triggers the fault. ``crash_after=0`` fires on the
            very first write.
        mode: ``"before"`` (skip the write), ``"after"`` (perform it, then
            die), or ``"torn"`` (write a prefix, then die).
        target: count only ``"wal"`` appends, only ``"page"`` writes, or
            ``"any"`` write operation.
        fail_fsync: when True, fsync calls silently do nothing — the
            "fsync lies" fault. Combined with :func:`lose_unsynced_wal`
            this models a device that acknowledged durability it never
            provided.
    """

    def __init__(
        self,
        crash_after: int,
        mode: str = "before",
        target: str = "any",
        fail_fsync: bool = False,
    ):
        if mode not in ("before", "after", "torn"):
            raise ValueError(f"unknown fault mode {mode!r}")
        if target not in ("any", "wal", "page"):
            raise ValueError(f"unknown fault target {target!r}")
        self.crash_after = crash_after
        self.mode = mode
        self.target = target
        self.fail_fsync = fail_fsync
        self.writes = 0
        self.fired = False
        self._lock = threading.Lock()

    def check(self, kind: str) -> str | None:
        """Account one write operation of ``kind`` (``"wal"``/``"page"``).

        Returns ``None`` to proceed normally, or the armed mode
        (``"torn"``/``"after"``) telling the caller to tear or complete
        the write and then raise. ``"before"`` raises here directly.
        """
        with self._lock:
            if self.fired:
                raise CrashError("store already crashed by fault injection")
            if self.target != "any" and self.target != kind:
                return None
            self.writes += 1
            if self.writes <= self.crash_after:
                return None
            self.fired = True
            if self.mode == "before":
                raise CrashError(
                    f"injected crash before {kind} write #{self.writes}"
                )
            return self.mode

    def crash(self, kind: str, action: str) -> None:
        """Raise the post-write crash for a ``"torn"``/``"after"`` action."""
        raise CrashError(
            f"injected crash ({action}) at {kind} write #{self.writes}"
        )


#: Which I/O direction each read-path fault kind applies to.
_READ_KINDS = ("bitflip", "short_read", "eio")
_WRITE_KINDS = ("stale", "enospc")


class IoFault:
    """One read/write fault in an :class:`IoFaultInjector` plan.

    Unlike :class:`FaultInjector` (which simulates *power loss* at a write
    boundary), these model *media and transport* faults: the process keeps
    running and the storage stack must detect, retry, or contain the damage.

    Args:
        kind: ``"bitflip"`` (flip one bit of the returned bytes),
            ``"short_read"`` (return a truncated buffer), ``"eio"`` (raise
            ``OSError(EIO)`` on read), ``"stale"`` (silently drop a write —
            the "lost write", leaving the old bytes on the medium), or
            ``"enospc"`` (raise ``OSError(ENOSPC)`` on write).
        target: apply to ``"page"``, ``"wal"``, or ``"catalog"`` I/O.
        after: number of matching operations allowed through before the
            fault arms (``after=0`` fires on the first matching op).
        count: how many times the fault fires before disarming; a transient
            ``eio`` with ``count=2`` fails twice then succeeds, so the disk
            manager's bounded retry recovers.
        page_id: restrict a ``page``-target fault to one page id.
        bit: for ``bitflip``, the absolute bit index to flip; ``None``
            derives a deterministic in-range position from the fire count.
    """

    __slots__ = ("kind", "target", "after", "count", "page_id", "bit", "fired")

    def __init__(
        self,
        kind: str,
        target: str = "page",
        after: int = 0,
        count: int = 1,
        page_id: int | None = None,
        bit: int | None = None,
    ):
        if kind not in _READ_KINDS + _WRITE_KINDS:
            raise ValueError(f"unknown I/O fault kind {kind!r}")
        if target not in ("page", "wal", "catalog"):
            raise ValueError(f"unknown I/O fault target {target!r}")
        self.kind = kind
        self.target = target
        self.after = after
        self.count = count
        self.page_id = page_id
        self.bit = bit
        self.fired = 0

    @property
    def op(self) -> str:
        return "read" if self.kind in _READ_KINDS else "write"


class IoFaultInjector:
    """Deterministic read/write fault plan, targetable by site and count.

    Armed on a store via ``store.inject_io_faults(...)``, which hangs the
    injector on the disk manager (page I/O), the WAL (record reads and
    appends), and the engine's catalog loader. Each fault fires after its
    ``after``-th matching operation and at most ``count`` times, so tests
    can script exact sequences: "the 3rd page read returns flipped bits,
    twice, then the medium heals".
    """

    def __init__(self, *faults: IoFault):
        self.faults = list(faults)
        self._ops: dict[tuple[str, str], int] = {}
        self._lock = threading.Lock()
        #: (op, target, kind, page_id) tuples, in fire order.
        self.log: list[tuple[str, str, str, int | None]] = []

    def add(self, fault: IoFault) -> None:
        with self._lock:
            self.faults.append(fault)

    def _fire(self, op: str, target: str, page_id: int | None) -> IoFault | None:
        with self._lock:
            key = (op, target)
            seen = self._ops.get(key, 0) + 1
            self._ops[key] = seen
            for fault in self.faults:
                if fault.target != target or fault.op != op:
                    continue
                if (
                    fault.page_id is not None
                    and page_id is not None
                    and fault.page_id != page_id
                ):
                    continue
                if seen <= fault.after or fault.fired >= fault.count:
                    continue
                fault.fired += 1
                self.log.append((op, target, fault.kind, page_id))
                return fault
            return None

    def apply_read(
        self, target: str, data: bytes, page_id: int | None = None
    ) -> bytes:
        """Pass ``data`` through the fault plan for one read of ``target``.

        Returns the (possibly damaged) bytes, or raises ``OSError(EIO)``.
        Each call counts as one operation, so a retried read re-rolls the
        plan — which is exactly how transient faults heal.
        """
        fault = self._fire("read", target, page_id)
        if fault is None:
            return data
        if fault.kind == "eio":
            raise OSError(errno.EIO, f"injected EIO on {target} read")
        if fault.kind == "short_read":
            return data[: len(data) // 3]
        # bitflip: deterministic position from the fire sequence.
        if not data:
            return data
        nbits = len(data) * 8
        bit = fault.bit if fault.bit is not None else (
            (2654435761 * (fault.after + fault.fired)) % nbits
        )
        bit %= nbits
        damaged = bytearray(data)
        damaged[bit // 8] ^= 1 << (bit % 8)
        return bytes(damaged)

    def check_write(self, target: str, page_id: int | None = None) -> str | None:
        """Roll the fault plan for one write; return ``"lost"`` or ``None``.

        ``"lost"`` tells the caller to acknowledge the write without
        touching the medium (the stale-page / lost-write fault);
        ``enospc`` raises ``OSError(ENOSPC)`` here.
        """
        fault = self._fire("write", target, page_id)
        if fault is None:
            return None
        if fault.kind == "enospc":
            raise OSError(
                errno.ENOSPC, f"injected ENOSPC on {target} write"
            )
        return "lost"


def count_writes(fn) -> int:
    """Run ``fn`` under a never-firing injector; return the write-op count.

    The crash matrix uses this to enumerate every injectable boundary of a
    workload before replaying it with crashes at each one.
    """
    probe = FaultInjector(crash_after=1 << 62)
    fn(probe)
    return probe.writes


def lose_unsynced_wal(wal_path: str, synced_size: int) -> None:
    """Simulate power loss: drop WAL bytes no fsync ever covered.

    ``synced_size`` is :attr:`~repro.storage.wal.WriteAheadLog.synced_size`
    captured from the crashed store before abandoning it.
    """
    with open(wal_path, "r+b") as f:
        f.truncate(max(0, synced_size))
