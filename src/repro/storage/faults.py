"""Fault injection for crash-recovery testing.

A :class:`FaultInjector` counts the write operations flowing through the
storage stack — WAL record appends and data-page writes — and hard-stops the
store at a configured boundary:

* ``mode="before"`` — the Nth write is never performed (power fails just
  before the head moves);
* ``mode="after"`` — the Nth write completes, then the store dies (the
  classic "crash between two writes" boundary);
* ``mode="torn"`` — only a prefix of the Nth write reaches the medium (a
  torn page / torn log record; the WAL's trailer check must detect it).

A fired injector poisons the store: every subsequent write raises
:class:`~repro.errors.CrashError` too, so no code path can accidentally
continue past the simulated power loss. Tests abandon the crashed store
object and reopen from the on-disk files, which runs recovery.

Because the injected "crash" keeps the hosting process alive, bytes written
without an fsync still sit safely in OS buffers. :func:`lose_unsynced_wal`
simulates the missing power-loss semantics explicitly ("fsync lies"): it
truncates the WAL file back to the last offset an fsync actually covered,
destroying every record that was only buffered.
"""

from __future__ import annotations

import threading

from repro.errors import CrashError


class FaultInjector:
    """Deterministic crash at the Nth write operation.

    Args:
        crash_after: number of write operations allowed to complete; the
            next one triggers the fault. ``crash_after=0`` fires on the
            very first write.
        mode: ``"before"`` (skip the write), ``"after"`` (perform it, then
            die), or ``"torn"`` (write a prefix, then die).
        target: count only ``"wal"`` appends, only ``"page"`` writes, or
            ``"any"`` write operation.
        fail_fsync: when True, fsync calls silently do nothing — the
            "fsync lies" fault. Combined with :func:`lose_unsynced_wal`
            this models a device that acknowledged durability it never
            provided.
    """

    def __init__(
        self,
        crash_after: int,
        mode: str = "before",
        target: str = "any",
        fail_fsync: bool = False,
    ):
        if mode not in ("before", "after", "torn"):
            raise ValueError(f"unknown fault mode {mode!r}")
        if target not in ("any", "wal", "page"):
            raise ValueError(f"unknown fault target {target!r}")
        self.crash_after = crash_after
        self.mode = mode
        self.target = target
        self.fail_fsync = fail_fsync
        self.writes = 0
        self.fired = False
        self._lock = threading.Lock()

    def check(self, kind: str) -> str | None:
        """Account one write operation of ``kind`` (``"wal"``/``"page"``).

        Returns ``None`` to proceed normally, or the armed mode
        (``"torn"``/``"after"``) telling the caller to tear or complete
        the write and then raise. ``"before"`` raises here directly.
        """
        with self._lock:
            if self.fired:
                raise CrashError("store already crashed by fault injection")
            if self.target != "any" and self.target != kind:
                return None
            self.writes += 1
            if self.writes <= self.crash_after:
                return None
            self.fired = True
            if self.mode == "before":
                raise CrashError(
                    f"injected crash before {kind} write #{self.writes}"
                )
            return self.mode

    def crash(self, kind: str, action: str) -> None:
        """Raise the post-write crash for a ``"torn"``/``"after"`` action."""
        raise CrashError(
            f"injected crash ({action}) at {kind} write #{self.writes}"
        )


def count_writes(fn) -> int:
    """Run ``fn`` under a never-firing injector; return the write-op count.

    The crash matrix uses this to enumerate every injectable boundary of a
    workload before replaying it with crashes at each one.
    """
    probe = FaultInjector(crash_after=1 << 62)
    fn(probe)
    return probe.writes


def lose_unsynced_wal(wal_path: str, synced_size: int) -> None:
    """Simulate power loss: drop WAL bytes no fsync ever covered.

    ``synced_size`` is :attr:`~repro.storage.wal.WriteAheadLog.synced_size`
    captured from the crashed store before abandoning it.
    """
    with open(wal_path, "r+b") as f:
        f.truncate(max(0, synced_size))
