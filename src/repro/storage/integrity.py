"""End-to-end data integrity: page trailers, checksums, and the registry.

Every page the :class:`~repro.storage.disk.DiskManager` persists is framed
with a 16-byte trailer *outside* the logical page (slotted pages grow their
slot directory backward from the page end, so the trailer cannot live inside
the page image upper layers see)::

    | page_size bytes of page data | u32 magic | u32 version | u32 crc | u32 0 |

``read_page`` verifies the trailer and raises
:class:`~repro.errors.CorruptPageError` on mismatch; the
:class:`IntegrityRegistry` records every verification, failure, repair, and
degraded-read skip so ``store.storage_stats()["integrity"]`` can surface
them. The same registry counts WAL-record and catalog-checksum events.
"""

from __future__ import annotations

import struct
import threading
from binascii import crc32  # same CRC-32 as zlib's, marginally faster
from typing import Any

#: Frame trailer: magic, format version, CRC32 of the page data, reserved.
TRAILER = struct.Struct("<IIII")
PAGE_TRAILER_SIZE = TRAILER.size  # 16 bytes
TRAILER_MAGIC = 0x52435348  # "RCSH" — Rodent CheckSum Header
PAGE_FORMAT_VERSION = 1

#: Degraded-read skip events kept in memory (oldest dropped beyond this).
MAX_SKIP_EVENTS = 256


def checksum(data: bytes | bytearray | memoryview) -> int:
    """CRC32 of ``data`` as an unsigned 32-bit int (C speed)."""
    return crc32(data) & 0xFFFFFFFF


def make_trailer(data: bytes | bytearray) -> bytes:
    """Build the 16-byte frame trailer for one page of data."""
    return TRAILER.pack(TRAILER_MAGIC, PAGE_FORMAT_VERSION, checksum(data), 0)


#: Precomputed (magic, version) trailer prefix for the hot-path compare.
_TRAILER_PREFIX = struct.pack("<II", TRAILER_MAGIC, PAGE_FORMAT_VERSION)
_CRC_FIELD = struct.Struct("<I")


def verify_frame(frame: bytes, page_size: int) -> tuple[bool, str]:
    """Verify a full page frame (data + trailer); return ``(ok, reason)``."""
    if len(frame) < page_size + PAGE_TRAILER_SIZE:
        return False, (
            f"short read: {len(frame)} bytes < frame size "
            f"{page_size + PAGE_TRAILER_SIZE} (truncated page)"
        )
    # Hot path (every page read): one 8-byte compare + zero-copy CRC.
    if frame[page_size : page_size + 8] != _TRAILER_PREFIX:
        magic, version = struct.unpack_from("<II", frame, page_size)
        if magic != TRAILER_MAGIC:
            return False, f"bad trailer magic {magic:#010x}"
        return False, f"unsupported page format version {version}"
    (stored,) = _CRC_FIELD.unpack_from(frame, page_size + 8)
    actual = crc32(memoryview(frame)[:page_size]) & 0xFFFFFFFF
    if actual != stored:
        return False, (
            f"checksum mismatch (stored {stored:#010x}, "
            f"computed {actual:#010x})"
        )
    return True, ""


class IntegrityRegistry:
    """Thread-safe counters and quarantine set for corruption events.

    One registry is shared by the disk manager, the WAL, and the store:
    pages that fail verification are quarantined here until a successful
    repair clears them, and every scan that skips a corrupt unit under
    degraded reads records the skip.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.page_verifications = 0
        self.page_failures = 0
        self.page_repairs = 0
        self.reread_recoveries = 0  # checksum mismatch cured by a re-read
        self.transient_retries = 0  # EIO-style errors cured by retry
        self.wal_records_verified = 0
        self.wal_failures = 0
        self.catalog_verifications = 0
        self.catalog_failures = 0
        self.scrubs = 0
        self.scan_skips = 0
        #: page_id -> failure reason, for pages awaiting repair.
        self.quarantined: dict[int, str] = {}
        #: Recent degraded-read skip events (dicts), bounded.
        self.skipped: list[dict[str, Any]] = []
        #: Report of the most recent ``store.scrub()``.
        self.last_scrub: dict[str, Any] | None = None

    # -- pages -------------------------------------------------------------

    def count_page_verification(self) -> None:
        # Hot path (every page read): a bare increment — the GIL keeps it
        # consistent enough for a statistic, and skipping the lock matters.
        self.page_verifications += 1

    def record_page_failure(self, page_id: int, reason: str) -> None:
        with self._lock:
            self.page_failures += 1
            self.quarantined[page_id] = reason

    def record_page_repair(self, page_id: int) -> None:
        with self._lock:
            self.page_repairs += 1
            self.quarantined.pop(page_id, None)

    def record_reread_recovery(self) -> None:
        with self._lock:
            self.reread_recoveries += 1

    def record_transient_retry(self) -> None:
        with self._lock:
            self.transient_retries += 1

    # -- WAL / catalog -----------------------------------------------------

    def count_wal_record(self) -> None:
        # Hot during recovery and scrub; same lock-free treatment as pages.
        self.wal_records_verified += 1

    def record_wal_failure(self) -> None:
        with self._lock:
            self.wal_failures += 1

    def count_catalog_verification(self) -> None:
        with self._lock:
            self.catalog_verifications += 1

    def record_catalog_failure(self) -> None:
        with self._lock:
            self.catalog_failures += 1

    # -- scans / scrub -----------------------------------------------------

    def record_skip(self, event: dict[str, Any]) -> None:
        with self._lock:
            self.scan_skips += 1
            self.skipped.append(event)
            if len(self.skipped) > MAX_SKIP_EVENTS:
                del self.skipped[: len(self.skipped) - MAX_SKIP_EVENTS]

    def record_scrub(self, report: dict[str, Any]) -> None:
        with self._lock:
            self.scrubs += 1
            self.last_scrub = report

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view for ``storage_stats()["integrity"]``."""
        with self._lock:
            return {
                "page_verifications": self.page_verifications,
                "page_failures": self.page_failures,
                "page_repairs": self.page_repairs,
                "reread_recoveries": self.reread_recoveries,
                "transient_retries": self.transient_retries,
                "wal_records_verified": self.wal_records_verified,
                "wal_failures": self.wal_failures,
                "catalog_verifications": self.catalog_verifications,
                "catalog_failures": self.catalog_failures,
                "scrubs": self.scrubs,
                "scan_skips": self.scan_skips,
                "quarantined": dict(self.quarantined),
                "skipped": list(self.skipped),
                "last_scrub": self.last_scrub,
            }
