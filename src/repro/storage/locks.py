"""Table-level shared/exclusive lock manager with deadlock detection.

Locks follow strict two-phase locking: transactions acquire locks as they
touch resources and release everything at commit/abort. Conflicts are resolved
by blocking; a wait-for graph is maintained and checked for cycles before each
block, raising :class:`DeadlockError` for the requester that would close a
cycle (the simplest victim policy).
"""

from __future__ import annotations

import threading
from collections import defaultdict
from enum import Enum

from repro.errors import DeadlockError, TransactionError


class LockMode(Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


def _compatible(held: set[LockMode], requested: LockMode) -> bool:
    if not held:
        return True
    if requested is LockMode.SHARED:
        return LockMode.EXCLUSIVE not in held
    return False


class _LockState:
    """Holders and waiters of one resource."""

    __slots__ = ("holders", "waiters")

    def __init__(self):
        self.holders: dict[int, LockMode] = {}
        self.waiters: list[tuple[int, LockMode]] = []

    def held_modes(self, excluding: int | None = None) -> set[LockMode]:
        return {
            mode
            for txn, mode in self.holders.items()
            if txn != excluding
        }


class LockManager:
    """Grant and release S/X locks on named resources (tables, objects)."""

    def __init__(self, timeout: float = 5.0):
        self.timeout = timeout
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._resources: dict[str, _LockState] = defaultdict(_LockState)
        self._held_by_txn: dict[int, set[str]] = defaultdict(set)

    # -- acquisition ---------------------------------------------------------

    def acquire(self, txn_id: int, resource: str, mode: LockMode) -> None:
        """Acquire (or upgrade to) ``mode`` on ``resource`` for ``txn_id``.

        Raises:
            DeadlockError: when waiting would create a wait-for cycle.
            TransactionError: when the wait exceeds the configured timeout.
        """
        with self._condition:
            state = self._resources[resource]
            current = state.holders.get(txn_id)
            if current is not None and (
                current is mode or current is LockMode.EXCLUSIVE
            ):
                return  # already strong enough

            state.waiters.append((txn_id, mode))
            try:
                while not self._grantable(state, txn_id, mode):
                    blockers = {
                        holder
                        for holder, held_mode in state.holders.items()
                        if holder != txn_id
                        and not _compatible({held_mode}, mode)
                    }
                    if self._would_deadlock(txn_id, blockers):
                        raise DeadlockError(
                            f"txn {txn_id} requesting {mode.value} on "
                            f"{resource!r} would deadlock with {sorted(blockers)}"
                        )
                    if not self._condition.wait(self.timeout):
                        raise TransactionError(
                            f"txn {txn_id} timed out waiting for "
                            f"{mode.value} on {resource!r}"
                        )
            finally:
                state.waiters.remove((txn_id, mode))
            state.holders[txn_id] = mode
            self._held_by_txn[txn_id].add(resource)

    def _grantable(self, state: _LockState, txn_id: int, mode: LockMode) -> bool:
        return _compatible(state.held_modes(excluding=txn_id), mode)

    def _would_deadlock(self, requester: int, blockers: set[int]) -> bool:
        """Depth-first search of the wait-for graph for a path back to us."""
        graph: dict[int, set[int]] = defaultdict(set)
        for resource, state in self._resources.items():
            for waiter, wanted in state.waiters:
                for holder, held_mode in state.holders.items():
                    if holder != waiter and not _compatible({held_mode}, wanted):
                        graph[waiter].add(holder)
        graph[requester] |= blockers

        stack, visited = list(blockers), set()
        while stack:
            node = stack.pop()
            if node == requester:
                return True
            if node in visited:
                continue
            visited.add(node)
            stack.extend(graph.get(node, ()))
        return False

    # -- release ----------------------------------------------------------

    def release_all(self, txn_id: int) -> None:
        """Release every lock held by ``txn_id`` (end of 2PL)."""
        with self._condition:
            for resource in self._held_by_txn.pop(txn_id, set()):
                state = self._resources.get(resource)
                if state is not None:
                    state.holders.pop(txn_id, None)
                    if not state.holders and not state.waiters:
                        del self._resources[resource]
            self._condition.notify_all()

    # -- inspection ---------------------------------------------------------

    def holders(self, resource: str) -> dict[int, LockMode]:
        with self._lock:
            state = self._resources.get(resource)
            return dict(state.holders) if state else {}

    def locks_of(self, txn_id: int) -> set[str]:
        with self._lock:
            return set(self._held_by_txn.get(txn_id, set()))
