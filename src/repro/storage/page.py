"""On-disk page formats.

Two page kinds are used by the layout renderers:

* :class:`SlottedPage` — classic slotted page for variable-length records
  (row layouts, nested layouts). Header, then record heap growing forward,
  then a slot directory growing backward from the end of the page.
* :class:`BytePage` — a raw byte container used for column chunks, compressed
  blocks, and index nodes: a header plus a single payload.

Both carry a small common header::

    magic  u16 | page_type u8 | reserved u8 | next_page_id i64

``next_page_id`` chains pages belonging to the same storage object, letting
cursors walk an object without consulting the catalog.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.errors import PageError

MAGIC = 0x5257  # "RW" — RodentStore-Writable
NO_PAGE = -1

PAGE_TYPE_FREE = 0
PAGE_TYPE_SLOTTED = 1
PAGE_TYPE_BYTES = 2
PAGE_TYPE_INDEX = 3

_COMMON_HEADER = struct.Struct("<HBBq")  # magic, type, reserved, next_page_id
_SLOTTED_EXTRA = struct.Struct("<II")  # slot_count, free_offset
_SLOT = struct.Struct("<II")  # offset, length (length==0xFFFFFFFF => deleted)
_BYTES_EXTRA = struct.Struct("<I")  # payload length

_DELETED = 0xFFFFFFFF

COMMON_HEADER_SIZE = _COMMON_HEADER.size
SLOTTED_HEADER_SIZE = COMMON_HEADER_SIZE + _SLOTTED_EXTRA.size
BYTES_HEADER_SIZE = COMMON_HEADER_SIZE + _BYTES_EXTRA.size


class SlottedPage:
    """A slotted page over a fixed-size buffer.

    The page does not know its own id; ids live in the disk manager / layout
    metadata. Slot ids are stable across deletions (deleted slots become
    tombstones) but not across compaction.
    """

    def __init__(self, page_size: int, buffer: bytearray | None = None):
        if page_size < SLOTTED_HEADER_SIZE + _SLOT.size + 1:
            raise PageError(f"page size {page_size} too small")
        self.page_size = page_size
        if buffer is None:
            self.buffer = bytearray(page_size)
            self.next_page_id = NO_PAGE
            self._slot_count = 0
            self._free_offset = SLOTTED_HEADER_SIZE
            self._write_header()
        else:
            if len(buffer) != page_size:
                raise PageError(
                    f"buffer size {len(buffer)} != page size {page_size}"
                )
            self.buffer = buffer
            self._read_header()

    # -- header -------------------------------------------------------------

    def _write_header(self) -> None:
        _COMMON_HEADER.pack_into(
            self.buffer, 0, MAGIC, PAGE_TYPE_SLOTTED, 0, self.next_page_id
        )
        _SLOTTED_EXTRA.pack_into(
            self.buffer, COMMON_HEADER_SIZE, self._slot_count, self._free_offset
        )

    def _read_header(self) -> None:
        magic, page_type, _, next_pid = _COMMON_HEADER.unpack_from(self.buffer, 0)
        if magic != MAGIC or page_type != PAGE_TYPE_SLOTTED:
            raise PageError(
                f"not a slotted page (magic={magic:#x}, type={page_type})"
            )
        self.next_page_id = next_pid
        self._slot_count, self._free_offset = _SLOTTED_EXTRA.unpack_from(
            self.buffer, COMMON_HEADER_SIZE
        )

    def set_next_page_id(self, page_id: int) -> None:
        self.next_page_id = page_id
        self._write_header()

    # -- capacity -------------------------------------------------------------

    @property
    def slot_count(self) -> int:
        return self._slot_count

    def _slot_offset(self, slot_id: int) -> int:
        return self.page_size - (slot_id + 1) * _SLOT.size

    def free_space(self) -> int:
        """Bytes available for one more record (including its slot entry)."""
        directory_start = self.page_size - self._slot_count * _SLOT.size
        gap = directory_start - self._free_offset
        return max(0, gap - _SLOT.size)

    def can_fit(self, record_size: int) -> bool:
        return record_size <= self.free_space()

    # -- record operations ------------------------------------------------

    def insert(self, record: bytes) -> int:
        """Append a record, returning its slot id.

        Raises:
            PageError: when the record does not fit.
        """
        if not self.can_fit(len(record)):
            raise PageError(
                f"record of {len(record)} bytes does not fit "
                f"({self.free_space()} free)"
            )
        offset = self._free_offset
        self.buffer[offset : offset + len(record)] = record
        slot_id = self._slot_count
        _SLOT.pack_into(self.buffer, self._slot_offset(slot_id), offset, len(record))
        self._slot_count += 1
        self._free_offset = offset + len(record)
        self._write_header()
        return slot_id

    def get(self, slot_id: int) -> bytes:
        """Return the record stored in ``slot_id``.

        Raises:
            PageError: when the slot is out of range or deleted.
        """
        offset, length = self._slot(slot_id)
        if length == _DELETED:
            raise PageError(f"slot {slot_id} is deleted")
        return bytes(self.buffer[offset : offset + length])

    def delete(self, slot_id: int) -> None:
        """Tombstone a slot; space is reclaimed by :meth:`compact`."""
        offset, length = self._slot(slot_id)
        if length == _DELETED:
            raise PageError(f"slot {slot_id} already deleted")
        _SLOT.pack_into(self.buffer, self._slot_offset(slot_id), offset, _DELETED)

    def is_deleted(self, slot_id: int) -> bool:
        _, length = self._slot(slot_id)
        return length == _DELETED

    def update(self, slot_id: int, record: bytes) -> int:
        """Replace a record in place when it fits, else delete + reinsert.

        Returns the (possibly new) slot id of the record.
        """
        offset, length = self._slot(slot_id)
        if length == _DELETED:
            raise PageError(f"slot {slot_id} is deleted")
        if len(record) <= length:
            self.buffer[offset : offset + len(record)] = record
            _SLOT.pack_into(
                self.buffer, self._slot_offset(slot_id), offset, len(record)
            )
            return slot_id
        self.delete(slot_id)
        return self.insert(record)

    def _slot(self, slot_id: int) -> tuple[int, int]:
        if not 0 <= slot_id < self._slot_count:
            raise PageError(
                f"slot {slot_id} out of range (page has {self._slot_count})"
            )
        return _SLOT.unpack_from(self.buffer, self._slot_offset(slot_id))

    def records(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(slot_id, record_bytes)`` for all live slots in order."""
        for slot_id in range(self._slot_count):
            offset, length = self._slot(slot_id)
            if length != _DELETED:
                yield slot_id, bytes(self.buffer[offset : offset + length])

    def compact(self) -> None:
        """Rewrite the heap dropping tombstones; slot ids are reassigned."""
        live = [record for _, record in self.records()]
        next_pid = self.next_page_id
        self.buffer = bytearray(self.page_size)
        self.next_page_id = next_pid
        self._slot_count = 0
        self._free_offset = SLOTTED_HEADER_SIZE
        self._write_header()
        for record in live:
            self.insert(record)


class BytePage:
    """A page holding one raw byte payload (column chunk, index node, ...)."""

    def __init__(self, page_size: int, buffer: bytearray | None = None):
        if page_size < BYTES_HEADER_SIZE + 1:
            raise PageError(f"page size {page_size} too small")
        self.page_size = page_size
        if buffer is None:
            self.buffer = bytearray(page_size)
            self.next_page_id = NO_PAGE
            self._length = 0
            self._write_header()
        else:
            if len(buffer) != page_size:
                raise PageError(
                    f"buffer size {len(buffer)} != page size {page_size}"
                )
            self.buffer = buffer
            self._read_header()

    def _write_header(self) -> None:
        _COMMON_HEADER.pack_into(
            self.buffer, 0, MAGIC, PAGE_TYPE_BYTES, 0, self.next_page_id
        )
        _BYTES_EXTRA.pack_into(self.buffer, COMMON_HEADER_SIZE, self._length)

    def _read_header(self) -> None:
        magic, page_type, _, next_pid = _COMMON_HEADER.unpack_from(self.buffer, 0)
        if magic != MAGIC or page_type != PAGE_TYPE_BYTES:
            raise PageError(
                f"not a byte page (magic={magic:#x}, type={page_type})"
            )
        self.next_page_id = next_pid
        (self._length,) = _BYTES_EXTRA.unpack_from(self.buffer, COMMON_HEADER_SIZE)

    def set_next_page_id(self, page_id: int) -> None:
        self.next_page_id = page_id
        self._write_header()

    @property
    def capacity(self) -> int:
        return self.page_size - BYTES_HEADER_SIZE

    def write(self, payload: bytes) -> None:
        """Store ``payload``, replacing any previous content."""
        if len(payload) > self.capacity:
            raise PageError(
                f"payload of {len(payload)} bytes exceeds capacity "
                f"{self.capacity}"
            )
        self._length = len(payload)
        start = BYTES_HEADER_SIZE
        self.buffer[start : start + len(payload)] = payload
        self._write_header()

    def read(self) -> bytes:
        start = BYTES_HEADER_SIZE
        return bytes(self.buffer[start : start + self._length])


def page_type_of(buffer: bytes | bytearray) -> int:
    """Inspect a raw buffer's page type without fully parsing it."""
    if len(buffer) < COMMON_HEADER_SIZE:
        raise PageError("buffer smaller than a page header")
    magic, page_type, _, _ = _COMMON_HEADER.unpack_from(buffer, 0)
    if magic != MAGIC:
        return PAGE_TYPE_FREE
    return page_type
