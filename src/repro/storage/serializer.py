"""Record and vector serialization built on the :mod:`struct` module.

Record wire format (used by slotted pages)::

    [null bitmap: ceil(n/8) bytes]
    [fixed-size fields packed with struct, in schema order]
    [for each variable-size field, in schema order: u32 length + payload]

Null fields contribute zeroed placeholder bytes in the fixed section and a
zero-length payload in the variable section, keeping offsets computable.

Vector wire format (used by column chunks)::

    [u32 count][encoded values...]            fixed-size element type
    [u32 count][u32 len + payload]...         variable-size element type
"""

from __future__ import annotations

import struct
from typing import Any, Sequence

from repro import vector
from repro.errors import SerializationError
from repro.types.schema import Schema
from repro.types.types import DataType

_U32 = struct.Struct("<I")


class RecordSerializer:
    """Encode/decode records of a fixed :class:`Schema` to bytes."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self._fixed_fields: list[tuple[int, DataType]] = []
        self._var_fields: list[tuple[int, DataType]] = []
        fmt = "<"
        for i, field in enumerate(schema.fields):
            if field.dtype.struct_format is not None:
                self._fixed_fields.append((i, field.dtype))
                fmt += field.dtype.struct_format
            else:
                self._var_fields.append((i, field.dtype))
        self._fixed_struct = struct.Struct(fmt)
        self._bitmap_size = (len(schema.fields) + 7) // 8

    # -- encoding ----------------------------------------------------------

    def encode(self, record: Sequence[Any]) -> bytes:
        """Serialize one record; ``None`` values are recorded as nulls."""
        if len(record) != len(self.schema.fields):
            raise SerializationError(
                f"record arity {len(record)} != schema arity "
                f"{len(self.schema.fields)}"
            )
        bitmap = bytearray(self._bitmap_size)
        fixed_values = []
        for i, dtype in self._fixed_fields:
            value = record[i]
            if value is None:
                bitmap[i // 8] |= 1 << (i % 8)
                fixed_values.append(_zero_for(dtype))
            else:
                fixed_values.append(_coerce_fixed(dtype, value))
        parts = [bytes(bitmap)]
        try:
            parts.append(self._fixed_struct.pack(*fixed_values))
        except struct.error as exc:
            raise SerializationError(
                f"cannot pack record {record!r}: {exc}"
            ) from exc
        for i, dtype in self._var_fields:
            value = record[i]
            if value is None:
                bitmap[i // 8] |= 1 << (i % 8)
                parts.append(_U32.pack(0))
            else:
                payload = _encode_var(dtype, value)
                parts.append(_U32.pack(len(payload)))
                parts.append(payload)
        parts[0] = bytes(bitmap)
        return b"".join(parts)

    def decode(self, data: bytes | memoryview) -> tuple:
        """Deserialize one record previously produced by :meth:`encode`."""
        data = bytes(data)
        if len(data) < self._bitmap_size + self._fixed_struct.size:
            raise SerializationError(
                f"record buffer too short ({len(data)} bytes)"
            )
        bitmap = data[: self._bitmap_size]
        try:
            fixed = self._fixed_struct.unpack_from(data, self._bitmap_size)
        except struct.error as exc:
            raise SerializationError(str(exc)) from exc
        values: list[Any] = [None] * len(self.schema.fields)
        for (i, dtype), raw in zip(self._fixed_fields, fixed):
            if not _is_null(bitmap, i):
                values[i] = raw
        offset = self._bitmap_size + self._fixed_struct.size
        for i, dtype in self._var_fields:
            if offset + 4 > len(data):
                raise SerializationError("truncated variable-length section")
            (length,) = _U32.unpack_from(data, offset)
            offset += 4
            if offset + length > len(data):
                raise SerializationError("truncated variable-length payload")
            if not _is_null(bitmap, i):
                values[i] = _decode_var(dtype, data[offset : offset + length])
            offset += length
        return tuple(values)

    def decode_many(self, blobs: Sequence[bytes]) -> list[tuple]:
        """Bulk-decode a page's worth of record blobs in one pass.

        The batch scan pipeline's record fast path: for all-fixed-width
        schemas with no nulls (the common case), each record is a single
        ``struct.unpack_from`` — no per-field loop, no null bookkeeping.
        Output is identical to mapping :meth:`decode` over ``blobs``.
        """
        if not self._var_fields:
            bitmap_size = self._bitmap_size
            zeros = bytes(bitmap_size)
            min_size = bitmap_size + self._fixed_struct.size
            unpack_from = self._fixed_struct.unpack_from
            decode = self.decode
            # Short/nulled blobs fall back to decode(), which raises the
            # same SerializationError the tuple-at-a-time path would.
            return [
                unpack_from(blob, bitmap_size)
                if len(blob) >= min_size and blob[:bitmap_size] == zeros
                else decode(blob)
                for blob in blobs
            ]
        return [self.decode(blob) for blob in blobs]

    def encoded_size(self, record: Sequence[Any]) -> int:
        """Byte length of :meth:`encode` without building the buffer."""
        size = self._bitmap_size + self._fixed_struct.size
        for i, dtype in self._var_fields:
            value = record[i]
            size += 4
            if value is not None:
                size += len(_encode_var(dtype, value))
        return size


class VectorSerializer:
    """Encode/decode homogeneous value vectors (column chunks)."""

    def __init__(self, dtype: DataType):
        self.dtype = dtype
        if dtype.struct_format is not None:
            self._elem = struct.Struct("<" + dtype.struct_format)
        else:
            self._elem = None

    def encode(self, values: Sequence[Any]) -> bytes:
        parts = [_U32.pack(len(values))]
        if self._elem is not None:
            try:
                parts.extend(self._elem.pack(v) for v in values)
            except struct.error as exc:
                raise SerializationError(
                    f"cannot pack vector of {self.dtype.name}: {exc}"
                ) from exc
        else:
            for v in values:
                payload = _encode_var(self.dtype, v)
                parts.append(_U32.pack(len(payload)))
                parts.append(payload)
        return b"".join(parts)

    def decode(self, data: bytes | memoryview) -> list:
        data = bytes(data)
        if len(data) < 4:
            raise SerializationError("vector buffer too short")
        (count,) = _U32.unpack_from(data, 0)
        offset = 4
        values: list[Any] = []
        if self._elem is not None:
            needed = offset + count * self._elem.size
            if len(data) < needed:
                raise SerializationError("truncated fixed-size vector")
            for _ in range(count):
                values.append(self._elem.unpack_from(data, offset)[0])
                offset += self._elem.size
        else:
            for _ in range(count):
                if offset + 4 > len(data):
                    raise SerializationError("truncated vector header")
                (length,) = _U32.unpack_from(data, offset)
                offset += 4
                if offset + length > len(data):
                    raise SerializationError("truncated vector payload")
                values.append(_decode_var(self.dtype, data[offset : offset + length]))
                offset += length
        return values

    def decode_bulk(self, data: bytes | memoryview) -> list:
        """Bulk decode (batch scan fast path): one ``struct`` call for
        fixed-size element types instead of a per-value loop. Output is
        identical to :meth:`decode`."""
        data = bytes(data)
        if len(data) < 4:
            raise SerializationError("vector buffer too short")
        (count,) = _U32.unpack_from(data, 0)
        if self._elem is None:
            return self.decode(data)
        if len(data) < 4 + count * self._elem.size:
            raise SerializationError("truncated fixed-size vector")
        fmt = self.dtype.struct_format
        return list(struct.unpack_from(f"<{count}{fmt}", data, 4))

    def decode_buffer(self, data: bytes | memoryview):
        """Decode into a contiguous typed vector (numpy ``ndarray`` or
        stdlib ``array``) for 8-byte numeric element types, falling back
        to :meth:`decode_bulk`'s list for everything else. Same values
        either way — callers treat both shapes uniformly via
        :mod:`repro.vector`."""
        code = vector.typecode_for(self.dtype)
        if code is None:
            return self.decode_bulk(data)
        data = bytes(data)
        if len(data) < 4:
            raise SerializationError("vector buffer too short")
        (count,) = _U32.unpack_from(data, 0)
        if len(data) < 4 + count * self._elem.size:
            raise SerializationError("truncated fixed-size vector")
        return vector.from_bytes(data, 4, count, code)

    def encoded_size(self, values: Sequence[Any]) -> int:
        if self._elem is not None:
            return 4 + len(values) * self._elem.size
        return 4 + sum(4 + len(_encode_var(self.dtype, v)) for v in values)


# -- helpers ---------------------------------------------------------------


def _is_null(bitmap: bytes, index: int) -> bool:
    return bool(bitmap[index // 8] & (1 << (index % 8)))


def _zero_for(dtype: DataType) -> Any:
    if dtype.struct_format == "?":
        return False
    if dtype.struct_format == "d":
        return 0.0
    return 0


def _coerce_fixed(dtype: DataType, value: Any) -> Any:
    if dtype.struct_format == "d":
        return float(value)
    if dtype.struct_format == "?":
        return bool(value)
    if isinstance(value, bool):
        raise SerializationError(
            f"bool value {value!r} is not valid for type {dtype.name}"
        )
    return value


def _encode_var(dtype: DataType, value: Any) -> bytes:
    if isinstance(value, str):
        return value.encode("utf-8")
    if isinstance(value, (bytes, bytearray)):
        return bytes(value)
    raise SerializationError(
        f"cannot encode {value!r} as variable-size {dtype.name}"
    )


def _decode_var(dtype: DataType, payload: bytes) -> Any:
    if dtype.name == "bytes":
        return payload
    return payload.decode("utf-8")
