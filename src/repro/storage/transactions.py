"""Transactions: WAL-logged page updates under two-phase locking.

The granularity is deliberately coarse (table-level locks, byte-range page
updates): the paper's point is that this machinery should be *shared* across
storage layouts rather than re-implemented per layout, so every layout
renderer funnels its mutations through this one module.

Commits are durable via group commit: each committer appends its COMMIT
record and then calls :meth:`~repro.storage.wal.WriteAheadLog.sync` with the
manager's ``group_window_s``. The first committer in a burst becomes the
group leader (one fsync covers the whole burst); the rest piggyback.

An in-memory engine that wants the locking/snapshot machinery without
durability constructs the manager with ``log=False``: transactions then skip
all WAL appends (an in-memory log would otherwise grow without bound) while
locks and commit/abort bookkeeping behave identically.
"""

from __future__ import annotations

import threading
from enum import Enum
from typing import Callable

from repro.errors import TransactionError
from repro.storage.buffer import BufferPool
from repro.storage.locks import LockManager, LockMode
from repro.storage.wal import (
    KIND_ABORT,
    KIND_BEGIN,
    KIND_COMMIT,
    KIND_UPDATE,
    WriteAheadLog,
)


class TxnStatus(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """Handle for one transaction; created via :class:`TransactionManager`."""

    def __init__(self, txn_id: int, manager: "TransactionManager"):
        self.txn_id = txn_id
        self.status = TxnStatus.ACTIVE
        self._manager = manager
        self._undo: list[tuple[int, int, bytes]] = []

    # -- locking ---------------------------------------------------------

    def lock_shared(self, resource: str) -> None:
        self._require_active()
        self._manager.locks.acquire(self.txn_id, resource, LockMode.SHARED)

    def lock_exclusive(self, resource: str) -> None:
        self._require_active()
        self._manager.locks.acquire(self.txn_id, resource, LockMode.EXCLUSIVE)

    # -- page mutation ------------------------------------------------------

    def update_page(self, page_id: int, offset: int, new_bytes: bytes) -> None:
        """Apply a logged byte-range update to a page via the buffer pool."""
        self._require_active()
        pool = self._manager.pool
        frame = pool.fetch(page_id)
        try:
            before = bytes(frame.data[offset : offset + len(new_bytes)])
            if self._manager.log:
                self._manager.wal.append(
                    KIND_UPDATE,
                    self.txn_id,
                    page_id=page_id,
                    offset=offset,
                    before=before,
                    after=new_bytes,
                )
            frame.data[offset : offset + len(new_bytes)] = new_bytes
            self._undo.append((page_id, offset, before))
        finally:
            pool.unpin(page_id, dirty=True)

    # -- outcome ----------------------------------------------------------

    def commit(self) -> None:
        self._require_active()
        manager = self._manager
        if manager.log:
            lsn = manager.wal.append(KIND_COMMIT, self.txn_id)
            # Group commit: sync outside any engine-level locks so
            # concurrent committers batch into one fsync.
            manager.wal.sync(lsn, window_s=manager.group_window_s)
        self.status = TxnStatus.COMMITTED
        manager.locks.release_all(self.txn_id)
        manager._finish(self.txn_id, committed=True)

    def abort(self) -> None:
        self._require_active()
        manager = self._manager
        pool = manager.pool
        for page_id, offset, before in reversed(self._undo):
            frame = pool.fetch(page_id)
            try:
                frame.data[offset : offset + len(before)] = before
            finally:
                pool.unpin(page_id, dirty=True)
        if manager.log:
            lsn = manager.wal.append(KIND_ABORT, self.txn_id)
            manager.wal.sync(lsn)
        self.status = TxnStatus.ABORTED
        manager.locks.release_all(self.txn_id)
        manager._finish(self.txn_id, committed=False)

    def _require_active(self) -> None:
        if self.status is not TxnStatus.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.status.value}"
            )

    # -- context manager: commit on success, abort on exception -------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.status is TxnStatus.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False


class TransactionManager:
    """Create transactions over a shared WAL, buffer pool, and lock manager.

    Args:
        wal: the shared write-ahead log.
        pool: the shared buffer pool.
        locks: lock manager (a fresh one is created when omitted).
        log: when False, transactions skip all WAL appends (locking-only
            mode for non-durable stores).
        group_window_s: group-commit window passed to ``wal.sync`` — how
            long a commit leader waits for followers before fsyncing.
    """

    def __init__(
        self,
        wal: WriteAheadLog,
        pool: BufferPool,
        locks: LockManager | None = None,
        log: bool = True,
        group_window_s: float = 0.0,
    ):
        self.wal = wal
        self.pool = pool
        self.locks = locks if locks is not None else LockManager()
        self.log = log
        self.group_window_s = group_window_s
        self.committed = 0
        self.aborted = 0
        self._next_txn_id = 1
        self._active: dict[int, Transaction] = {}
        self._lock = threading.Lock()

    def begin(self) -> Transaction:
        with self._lock:
            txn_id = self._next_txn_id
            self._next_txn_id += 1
            txn = Transaction(txn_id, self)
            self._active[txn_id] = txn
        if self.log:
            self.wal.append(KIND_BEGIN, txn_id)
        return txn

    def _finish(self, txn_id: int, committed: bool) -> None:
        with self._lock:
            self._active.pop(txn_id, None)
            if committed:
                self.committed += 1
            else:
                self.aborted += 1

    @property
    def active_count(self) -> int:
        return len(self._active)

    def run(self, body: Callable[[Transaction], None]) -> None:
        """Run ``body`` in a transaction, committing or aborting around it."""
        with self.begin() as txn:
            body(txn)
