"""Transactions: WAL-logged page updates under two-phase locking.

The granularity is deliberately coarse (table-level locks, byte-range page
updates): the paper's point is that this machinery should be *shared* across
storage layouts rather than re-implemented per layout, so every layout
renderer funnels its mutations through this one module.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable

from repro.errors import TransactionError
from repro.storage.buffer import BufferPool
from repro.storage.locks import LockManager, LockMode
from repro.storage.wal import (
    KIND_ABORT,
    KIND_BEGIN,
    KIND_COMMIT,
    KIND_UPDATE,
    WriteAheadLog,
)


class TxnStatus(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """Handle for one transaction; created via :class:`TransactionManager`."""

    def __init__(self, txn_id: int, manager: "TransactionManager"):
        self.txn_id = txn_id
        self.status = TxnStatus.ACTIVE
        self._manager = manager
        self._undo: list[tuple[int, int, bytes]] = []

    # -- locking ---------------------------------------------------------

    def lock_shared(self, resource: str) -> None:
        self._require_active()
        self._manager.locks.acquire(self.txn_id, resource, LockMode.SHARED)

    def lock_exclusive(self, resource: str) -> None:
        self._require_active()
        self._manager.locks.acquire(self.txn_id, resource, LockMode.EXCLUSIVE)

    # -- page mutation ------------------------------------------------------

    def update_page(self, page_id: int, offset: int, new_bytes: bytes) -> None:
        """Apply a logged byte-range update to a page via the buffer pool."""
        self._require_active()
        pool = self._manager.pool
        frame = pool.fetch(page_id)
        try:
            before = bytes(frame.data[offset : offset + len(new_bytes)])
            self._manager.wal.append(
                KIND_UPDATE,
                self.txn_id,
                page_id=page_id,
                offset=offset,
                before=before,
                after=new_bytes,
            )
            frame.data[offset : offset + len(new_bytes)] = new_bytes
            self._undo.append((page_id, offset, before))
        finally:
            pool.unpin(page_id, dirty=True)

    # -- outcome ----------------------------------------------------------

    def commit(self) -> None:
        self._require_active()
        self._manager.wal.append(KIND_COMMIT, self.txn_id)
        self._manager.wal.flush()
        self.status = TxnStatus.COMMITTED
        self._manager.locks.release_all(self.txn_id)
        self._manager._finish(self.txn_id)

    def abort(self) -> None:
        self._require_active()
        pool = self._manager.pool
        for page_id, offset, before in reversed(self._undo):
            frame = pool.fetch(page_id)
            try:
                frame.data[offset : offset + len(before)] = before
            finally:
                pool.unpin(page_id, dirty=True)
        self._manager.wal.append(KIND_ABORT, self.txn_id)
        self._manager.wal.flush()
        self.status = TxnStatus.ABORTED
        self._manager.locks.release_all(self.txn_id)
        self._manager._finish(self.txn_id)

    def _require_active(self) -> None:
        if self.status is not TxnStatus.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.status.value}"
            )

    # -- context manager: commit on success, abort on exception -------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.status is TxnStatus.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False


class TransactionManager:
    """Create transactions over a shared WAL, buffer pool, and lock manager."""

    def __init__(
        self,
        wal: WriteAheadLog,
        pool: BufferPool,
        locks: LockManager | None = None,
    ):
        self.wal = wal
        self.pool = pool
        self.locks = locks if locks is not None else LockManager()
        self._next_txn_id = 1
        self._active: dict[int, Transaction] = {}

    def begin(self) -> Transaction:
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        self.wal.append(KIND_BEGIN, txn_id)
        txn = Transaction(txn_id, self)
        self._active[txn_id] = txn
        return txn

    def _finish(self, txn_id: int) -> None:
        self._active.pop(txn_id, None)

    @property
    def active_count(self) -> int:
        return len(self._active)

    def run(self, body: Callable[[Transaction], None]) -> None:
        """Run ``body`` in a transaction, committing or aborting around it."""
        with self.begin() as txn:
            body(txn)
