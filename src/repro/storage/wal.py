"""Write-ahead log with redo/undo recovery and group commit.

A deliberately small physiological WAL: update records carry page id, offset,
and before/after images of the modified byte range. Recovery replays the log
forward (redo for committed transactions) and backward (undo for transactions
with no COMMIT record). Two *logical* record kinds ride on the same format:
``ROWS`` (inserted rows, as a JSON blob) and ``CATALOG`` (one table's
serialized catalog entry) — the engine-level recovery in
:mod:`repro.engine.recovery` replays those on top of the page images.

Record wire format (v2, written since the integrity layer)::

    u32 total_len | u8 kind|0x80 | u64 lsn | u64 txn_id | payload | u32 crc32 | u32 total_len

The high bit of the kind byte marks a checksummed record; the CRC32 covers
everything from the header through the payload, so bit rot *anywhere* in a
record is detected — not just torn tails. Legacy (v1) records without the
flag still decode (trailer-only check), giving an in-band migration path:
old logs replay, new appends are checksummed.

The trailing length makes backward scans possible and doubles as a torn-write
check. :meth:`WriteAheadLog.records` distinguishes two failure shapes:

* a *torn tail* — undecodable bytes with no valid record after them — is a
  crash artifact and silently ends the log (the recovery contract);
* *mid-log corruption* — undecodable bytes **followed by** decodable
  records, a CRC mismatch, or a gap in the (strictly sequential) LSN
  sequence — raises :class:`~repro.errors.CorruptWALError`, because the log
  can no longer be trusted for replay.

Durability is tracked at two levels: :meth:`WriteAheadLog.sync` fsyncs up to
a target LSN with *piggybacking* (a commit whose LSN an earlier fsync already
covered returns without touching the device — the group-commit fast path),
and :attr:`WriteAheadLog.synced_size` records the byte offset the last real
fsync covered, which the fault-injection harness uses to simulate losing
OS-buffered bytes on power failure.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib
from typing import Iterator

from repro.errors import CorruptWALError, WALError
from repro.storage.disk import DiskManager

KIND_BEGIN = 1
KIND_UPDATE = 2
KIND_COMMIT = 3
KIND_ABORT = 4
KIND_CHECKPOINT = 5
# Logical records (opaque payload bytes; interpreted by engine recovery).
KIND_ROWS = 6
KIND_CATALOG = 7

#: High bit of the kind byte: this record carries a CRC32 (v2 format).
KIND_CRC_FLAG = 0x80

_HEADER = struct.Struct("<IBQQ")
_TRAILER = struct.Struct("<I")
_CRC = struct.Struct("<I")
_UPDATE_META = struct.Struct("<qII")  # page_id, offset, image_len

_PAYLOAD_KINDS = (KIND_ROWS, KIND_CATALOG)
_KNOWN_KINDS = frozenset(range(KIND_BEGIN, KIND_CATALOG + 1))

#: How far past an undecodable point records() searches for a valid record
#: before classifying the damage as a torn tail rather than mid-log rot.
_RESYNC_WINDOW = 1 << 16


class LogRecord:
    """One WAL entry."""

    __slots__ = (
        "kind", "lsn", "txn_id", "page_id", "offset", "before", "after",
        "payload",
    )

    def __init__(
        self,
        kind: int,
        lsn: int,
        txn_id: int,
        page_id: int = -1,
        offset: int = 0,
        before: bytes = b"",
        after: bytes = b"",
        payload: bytes = b"",
    ):
        self.kind = kind
        self.lsn = lsn
        self.txn_id = txn_id
        self.page_id = page_id
        self.offset = offset
        self.before = before
        self.after = after
        self.payload = payload

    def encode(self) -> bytes:
        if self.kind == KIND_UPDATE:
            if len(self.before) != len(self.after):
                raise WALError("before/after images must have equal length")
            payload = _UPDATE_META.pack(self.page_id, self.offset, len(self.before))
            payload += self.before + self.after
        elif self.kind in _PAYLOAD_KINDS:
            payload = self.payload
        else:
            payload = b""
        total = _HEADER.size + len(payload) + _CRC.size + _TRAILER.size
        body = (
            _HEADER.pack(total, self.kind | KIND_CRC_FLAG, self.lsn, self.txn_id)
            + payload
        )
        crc = zlib.crc32(body) & 0xFFFFFFFF
        return body + _CRC.pack(crc) + _TRAILER.pack(total)

    @classmethod
    def decode(cls, data: bytes, start: int) -> tuple["LogRecord", int]:
        """Decode one record at ``start``; returns (record, next_offset).

        Structural damage (truncation, trailer mismatch, unknown kind)
        raises :class:`WALError`; a failed CRC on a v2 record raises
        :class:`~repro.errors.CorruptWALError` — the record is intact in
        shape but rotten in content.
        """
        if start + _HEADER.size > len(data):
            raise WALError("truncated log header")
        total, kind_byte, lsn, txn_id = _HEADER.unpack_from(data, start)
        has_crc = bool(kind_byte & KIND_CRC_FLAG)
        kind = kind_byte & ~KIND_CRC_FLAG
        overhead = _HEADER.size + _TRAILER.size + (_CRC.size if has_crc else 0)
        end = start + total
        if total < overhead or end > len(data):
            raise WALError("truncated log record")
        (trailer,) = _TRAILER.unpack_from(data, end - _TRAILER.size)
        if trailer != total:
            raise WALError("torn log record (trailer mismatch)")
        if kind not in _KNOWN_KINDS:
            raise WALError(f"unknown log record kind {kind}")
        payload_end = end - _TRAILER.size
        if has_crc:
            payload_end -= _CRC.size
            (stored,) = _CRC.unpack_from(data, payload_end)
            actual = zlib.crc32(data[start:payload_end]) & 0xFFFFFFFF
            if actual != stored:
                raise CorruptWALError(
                    f"WAL record checksum mismatch at byte {start} "
                    f"(lsn {lsn}, stored {stored:#010x}, "
                    f"computed {actual:#010x})"
                )
        record = cls(kind, lsn, txn_id)
        if kind == KIND_UPDATE:
            meta_at = start + _HEADER.size
            if meta_at + _UPDATE_META.size > payload_end:
                raise WALError("truncated update metadata")
            page_id, offset, image_len = _UPDATE_META.unpack_from(data, meta_at)
            images_at = meta_at + _UPDATE_META.size
            if images_at + 2 * image_len > payload_end:
                raise WALError("truncated update images")
            record.page_id = page_id
            record.offset = offset
            record.before = data[images_at : images_at + image_len]
            record.after = data[images_at + image_len : images_at + 2 * image_len]
        elif kind in _PAYLOAD_KINDS:
            record.payload = data[start + _HEADER.size : payload_end]
        return record, end


class WriteAheadLog:
    """Append-only log, file-backed or in-memory.

    Appends are serialized under an internal lock (concurrent committers
    share one log); fsyncs go through :meth:`sync`, which batches them
    group-commit style. ``faults`` optionally holds a
    :class:`~repro.storage.faults.FaultInjector` that can tear or abort
    appends at a chosen write boundary.
    """

    def __init__(self, path: str | None = None):
        self.path = path
        self._next_lsn = 1
        self._lock = threading.Lock()
        self._sync_lock = threading.Lock()
        #: Highest LSN known durable (covered by a real fsync); in-memory
        #: logs track it too so group-commit accounting works in tests.
        self.flushed_lsn = 0
        #: Byte offset of the log file the last fsync covered.
        self.synced_size = 0
        #: Fsyncs actually issued (group commit makes this < commits).
        self.fsyncs = 0
        #: Records appended through this handle.
        self.appends = 0
        #: Optional FaultInjector observing appends and fsyncs.
        self.faults = None
        #: Optional IoFaultInjector damaging record reads / dropping appends.
        self.io_faults = None
        #: Optional IntegrityRegistry counting record verifications.
        self.integrity = None
        if path is None:
            self._buffer = bytearray()
            self._file = None
        else:
            self._buffer = None
            exists = os.path.exists(path)
            self._file = open(path, "r+b" if exists else "w+b")
            self._file.seek(0, os.SEEK_END)
            self._recompute_next_lsn()

    def _recompute_next_lsn(self) -> None:
        max_lsn = 0
        for record in self.records():
            max_lsn = max(max_lsn, record.lsn)
        self._next_lsn = max_lsn + 1

    # -- writing ----------------------------------------------------------

    def append(
        self,
        kind: int,
        txn_id: int,
        page_id: int = -1,
        offset: int = 0,
        before: bytes = b"",
        after: bytes = b"",
        payload: bytes = b"",
    ) -> int:
        """Append a record and return its LSN."""
        with self._lock:
            lsn = self._next_lsn
            self._next_lsn += 1
            record = LogRecord(
                kind, lsn, txn_id, page_id, offset, before, after, payload
            )
            encoded = record.encode()
            action = None
            if self.faults is not None:
                action = self.faults.check("wal")
                if action == "torn":
                    # A torn append: only a strict prefix of the record
                    # reaches the log. The trailer check must discard it.
                    encoded = encoded[: max(1, len(encoded) // 2)]
            lost = False
            if self.io_faults is not None:
                try:
                    lost = self.io_faults.check_write("wal") == "lost"
                except OSError as exc:
                    raise WALError(f"WAL append failed: {exc}") from exc
            if not lost:
                if self._file is not None:
                    self._file.seek(0, os.SEEK_END)
                    self._file.write(encoded)
                else:
                    self._buffer.extend(encoded)
            self.appends += 1
        if action is not None:
            assert self.faults is not None
            self.faults.crash("wal", action)
        return lsn

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    @property
    def size_bytes(self) -> int:
        """Current log length in bytes (file or in-memory buffer)."""
        with self._lock:
            if self._file is not None:
                self._file.seek(0, os.SEEK_END)
                return self._file.tell()
            return len(self._buffer)

    def sync(self, upto_lsn: int | None = None, window_s: float = 0.0) -> None:
        """Make every record up to ``upto_lsn`` durable (group commit).

        A committer whose LSN an earlier fsync already covered returns
        immediately — it *piggybacked* on that fsync. Otherwise it becomes
        the group leader: after an optional ``window_s`` wait (letting more
        committers append their records), one fsync covers everything
        appended so far, and the followers' sync calls then piggyback.
        """
        if upto_lsn is None:
            upto_lsn = self.last_lsn
        if self.flushed_lsn >= upto_lsn:
            return
        with self._sync_lock:
            if self.flushed_lsn >= upto_lsn:
                return  # a leader's fsync covered us while we waited
            if window_s > 0.0:
                time.sleep(window_s)
            with self._lock:
                covered = self._next_lsn - 1
                if self._file is not None:
                    self._file.flush()
                    size = self._file.seek(0, os.SEEK_END)
                else:
                    size = len(self._buffer)
            if self._file is not None:
                if self.faults is None or not self.faults.fail_fsync:
                    os.fsync(self._file.fileno())
                    self.synced_size = size
                # An fsync that "lies" leaves synced_size where it was:
                # those bytes were never made durable.
            else:
                self.synced_size = size
            self.fsyncs += 1
            self.flushed_lsn = covered

    def flush(self) -> None:
        """Flush and fsync everything appended so far."""
        self.sync()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    # -- reading ----------------------------------------------------------

    def _raw(self) -> bytes:
        with self._lock:
            if self._file is not None:
                self._file.seek(0)
                data = self._file.read()
            else:
                data = bytes(self._buffer)
        if self.io_faults is not None:
            attempts = 0
            while True:
                try:
                    return self.io_faults.apply_read("wal", data)
                except OSError as exc:
                    attempts += 1
                    if attempts <= 3:
                        time.sleep(0.0005 * attempts)
                        continue
                    raise WALError(
                        f"I/O error reading WAL after {attempts} "
                        f"attempts: {exc}"
                    ) from exc
        return data

    def records(self) -> Iterator[LogRecord]:
        """Iterate all records in append order, stopping at torn tails.

        Raises :class:`~repro.errors.CorruptWALError` for damage that a
        crash cannot explain: a CRC mismatch, undecodable bytes *followed
        by* decodable records (a torn write only ever truncates the tail),
        or a gap in the strictly sequential LSN sequence (a lost append).
        """
        data = self._raw()
        offset = 0
        prev_lsn: int | None = None
        while offset < len(data):
            try:
                record, offset = LogRecord.decode(data, offset)
            except CorruptWALError:
                if self.integrity is not None:
                    self.integrity.record_wal_failure()
                raise
            except WALError:
                if _resync_offset(data, offset) is not None:
                    if self.integrity is not None:
                        self.integrity.record_wal_failure()
                    raise CorruptWALError(
                        f"mid-log corruption at byte {offset}: valid "
                        "records follow an undecodable region"
                    )
                return  # torn tail: everything after is discarded
            if prev_lsn is not None and record.lsn != prev_lsn + 1:
                if self.integrity is not None:
                    self.integrity.record_wal_failure()
                raise CorruptWALError(
                    f"WAL LSN gap: record {record.lsn} follows {prev_lsn} "
                    "(a lost or reordered append)"
                )
            prev_lsn = record.lsn
            if self.integrity is not None:
                self.integrity.count_wal_record()
            yield record

    def truncate(self) -> None:
        """Discard the log (after a checkpoint has made it redundant).

        LSNs keep increasing across truncation, and everything discarded
        was durable by definition (the checkpoint fsynced it into the data
        file and catalog), so the flushed high-water mark advances to the
        last appended LSN — committers waiting to sync piggyback on the
        checkpoint instead of fsyncing an empty log.
        """
        with self._lock:
            if self._file is not None:
                self._file.seek(0)
                self._file.truncate()
                self._file.flush()
                os.fsync(self._file.fileno())
            else:
                self._buffer.clear()
            self.synced_size = 0
            self.flushed_lsn = self._next_lsn - 1


def recover(wal: WriteAheadLog, disk: DiskManager) -> dict[str, int]:
    """Redo committed work and undo uncommitted work.

    Returns summary counters: committed/aborted/in-flight transaction counts
    and redo/undo record counts. Standard two-pass recovery: an analysis pass
    finds transaction outcomes; the redo pass replays updates of committed
    transactions forward; the undo pass rolls back the rest backward.

    This is the page-image half of recovery; the engine-level
    :func:`repro.engine.recovery.recover_store` builds on it and also
    replays logical ROWS/CATALOG records against the catalog.
    """
    records = list(wal.records())
    committed: set[int] = set()
    aborted: set[int] = set()
    seen: set[int] = set()
    for record in records:
        seen.add(record.txn_id)
        if record.kind == KIND_COMMIT:
            committed.add(record.txn_id)
        elif record.kind == KIND_ABORT:
            aborted.add(record.txn_id)

    redo_count = 0
    for record in records:
        if record.kind == KIND_UPDATE and record.txn_id in committed:
            _apply_image(disk, record.page_id, record.offset, record.after)
            redo_count += 1

    undo_count = 0
    losers = seen - committed
    for record in reversed(records):
        if record.kind == KIND_UPDATE and record.txn_id in losers:
            _apply_image(disk, record.page_id, record.offset, record.before)
            undo_count += 1

    return {
        "committed": len(committed),
        "aborted": len(aborted),
        "in_flight": len(losers - aborted),
        "redo": redo_count,
        "undo": undo_count,
    }


def _resync_offset(data: bytes, start: int) -> int | None:
    """Scan forward from a decode failure looking for a valid record.

    Returns the offset of the next decodable record within the resync
    window, or ``None`` when nothing decodes — the torn-tail case.
    """
    end = min(len(data), start + _RESYNC_WINDOW)
    for offset in range(start + 1, end):
        try:
            LogRecord.decode(data, offset)
        except WALError:
            continue
        return offset
    return None


def _apply_image(disk: DiskManager, page_id: int, offset: int, image: bytes) -> None:
    # The unchecked read is deliberate: recovery overwrites pages that may
    # be torn or truncated, so verification must not block the replay.
    while page_id >= disk.num_pages:
        disk.allocate_page()
    page = disk.read_page_unchecked(page_id)
    page[offset : offset + len(image)] = image
    disk.write_page(page_id, page)
