"""Write-ahead log with redo/undo recovery.

A deliberately small physiological WAL: update records carry page id, offset,
and before/after images of the modified byte range. Recovery replays the log
forward (redo for committed transactions) and backward (undo for transactions
with no COMMIT record), which is sufficient for the single-writer engine this
library implements.

Record wire format::

    u32 total_len | u8 kind | u64 lsn | u64 txn_id | payload | u32 total_len

The trailing length makes backward scans possible and doubles as a torn-write
check: a record whose trailer does not match is treated as the end of the log.
"""

from __future__ import annotations

import os
import struct
from typing import Iterator

from repro.errors import WALError
from repro.storage.disk import DiskManager

KIND_BEGIN = 1
KIND_UPDATE = 2
KIND_COMMIT = 3
KIND_ABORT = 4
KIND_CHECKPOINT = 5

_HEADER = struct.Struct("<IBQQ")
_TRAILER = struct.Struct("<I")
_UPDATE_META = struct.Struct("<qII")  # page_id, offset, image_len


class LogRecord:
    """One WAL entry."""

    __slots__ = ("kind", "lsn", "txn_id", "page_id", "offset", "before", "after")

    def __init__(
        self,
        kind: int,
        lsn: int,
        txn_id: int,
        page_id: int = -1,
        offset: int = 0,
        before: bytes = b"",
        after: bytes = b"",
    ):
        self.kind = kind
        self.lsn = lsn
        self.txn_id = txn_id
        self.page_id = page_id
        self.offset = offset
        self.before = before
        self.after = after

    def encode(self) -> bytes:
        if self.kind == KIND_UPDATE:
            if len(self.before) != len(self.after):
                raise WALError("before/after images must have equal length")
            payload = _UPDATE_META.pack(self.page_id, self.offset, len(self.before))
            payload += self.before + self.after
        else:
            payload = b""
        total = _HEADER.size + len(payload) + _TRAILER.size
        return (
            _HEADER.pack(total, self.kind, self.lsn, self.txn_id)
            + payload
            + _TRAILER.pack(total)
        )

    @classmethod
    def decode(cls, data: bytes, start: int) -> tuple["LogRecord", int]:
        """Decode one record at ``start``; returns (record, next_offset)."""
        if start + _HEADER.size > len(data):
            raise WALError("truncated log header")
        total, kind, lsn, txn_id = _HEADER.unpack_from(data, start)
        end = start + total
        if end > len(data):
            raise WALError("truncated log record")
        (trailer,) = _TRAILER.unpack_from(data, end - _TRAILER.size)
        if trailer != total:
            raise WALError("torn log record (trailer mismatch)")
        record = cls(kind, lsn, txn_id)
        if kind == KIND_UPDATE:
            meta_at = start + _HEADER.size
            page_id, offset, image_len = _UPDATE_META.unpack_from(data, meta_at)
            images_at = meta_at + _UPDATE_META.size
            record.page_id = page_id
            record.offset = offset
            record.before = data[images_at : images_at + image_len]
            record.after = data[images_at + image_len : images_at + 2 * image_len]
        return record, end


class WriteAheadLog:
    """Append-only log, file-backed or in-memory."""

    def __init__(self, path: str | None = None):
        self.path = path
        self._next_lsn = 1
        if path is None:
            self._buffer = bytearray()
            self._file = None
        else:
            self._buffer = None
            exists = os.path.exists(path)
            self._file = open(path, "r+b" if exists else "w+b")
            self._file.seek(0, os.SEEK_END)
            self._recompute_next_lsn()

    def _recompute_next_lsn(self) -> None:
        max_lsn = 0
        for record in self.records():
            max_lsn = max(max_lsn, record.lsn)
        self._next_lsn = max_lsn + 1

    # -- writing ----------------------------------------------------------

    def append(
        self,
        kind: int,
        txn_id: int,
        page_id: int = -1,
        offset: int = 0,
        before: bytes = b"",
        after: bytes = b"",
    ) -> int:
        """Append a record and return its LSN."""
        lsn = self._next_lsn
        self._next_lsn += 1
        record = LogRecord(kind, lsn, txn_id, page_id, offset, before, after)
        encoded = record.encode()
        if self._file is not None:
            self._file.seek(0, os.SEEK_END)
            self._file.write(encoded)
        else:
            self._buffer.extend(encoded)
        return lsn

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    # -- reading ----------------------------------------------------------

    def _raw(self) -> bytes:
        if self._file is not None:
            self._file.seek(0)
            return self._file.read()
        return bytes(self._buffer)

    def records(self) -> Iterator[LogRecord]:
        """Iterate all records in append order, stopping at torn tails."""
        data = self._raw()
        offset = 0
        while offset < len(data):
            try:
                record, offset = LogRecord.decode(data, offset)
            except WALError:
                return  # torn tail: everything after is discarded
            yield record

    def truncate(self) -> None:
        """Discard the log (after a checkpoint has made it redundant)."""
        if self._file is not None:
            self._file.seek(0)
            self._file.truncate()
        else:
            self._buffer.clear()


def recover(wal: WriteAheadLog, disk: DiskManager) -> dict[str, int]:
    """Redo committed work and undo uncommitted work.

    Returns summary counters: committed/aborted/in-flight transaction counts
    and redo/undo record counts. Standard two-pass recovery: an analysis pass
    finds transaction outcomes; the redo pass replays updates of committed
    transactions forward; the undo pass rolls back the rest backward.
    """
    records = list(wal.records())
    committed: set[int] = set()
    aborted: set[int] = set()
    seen: set[int] = set()
    for record in records:
        seen.add(record.txn_id)
        if record.kind == KIND_COMMIT:
            committed.add(record.txn_id)
        elif record.kind == KIND_ABORT:
            aborted.add(record.txn_id)

    redo_count = 0
    for record in records:
        if record.kind == KIND_UPDATE and record.txn_id in committed:
            _apply_image(disk, record.page_id, record.offset, record.after)
            redo_count += 1

    undo_count = 0
    losers = seen - committed
    for record in reversed(records):
        if record.kind == KIND_UPDATE and record.txn_id in losers:
            _apply_image(disk, record.page_id, record.offset, record.before)
            undo_count += 1

    return {
        "committed": len(committed),
        "aborted": len(aborted),
        "in_flight": len(losers - aborted),
        "redo": redo_count,
        "undo": undo_count,
    }


def _apply_image(disk: DiskManager, page_id: int, offset: int, image: bytes) -> None:
    while page_id >= disk.num_pages:
        disk.allocate_page()
    page = disk.read_page(page_id)
    page[offset : offset + len(image)] = image
    disk.write_page(page_id, page)
