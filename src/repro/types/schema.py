"""Logical schemas: ordered collections of named, typed fields.

A :class:`Schema` corresponds to the paper's logical table definition, e.g.::

    Traces(int t, float lat, float lon, double ID, ...)

Records conforming to a schema are plain Python tuples; the schema maps field
names to tuple positions.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.errors import SchemaError
from repro.types.types import DataType, NamedType, NestedType, type_from_name


class Field:
    """A single named, typed column of a logical schema."""

    __slots__ = ("name", "dtype")

    def __init__(self, name: str, dtype: DataType):
        if not name or not name.replace("_", "a").isalnum():
            raise SchemaError(f"invalid field name {name!r}")
        self.name = name
        self.dtype = dtype

    def as_named_type(self) -> NamedType:
        return NamedType(self.name, self.dtype)

    def __repr__(self) -> str:
        return f"Field({self.name}:{self.dtype.name})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Field)
            and other.name == self.name
            and other.dtype == self.dtype
        )

    def __hash__(self) -> int:
        return hash((self.name, self.dtype))


class Schema:
    """An ordered, immutable list of fields with name-based lookup."""

    def __init__(self, fields: Sequence[Field]):
        if not fields:
            raise SchemaError("a schema requires at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate field name(s): {dupes}")
        self.fields = tuple(fields)
        self._index = {f.name: i for i, f in enumerate(self.fields)}

    @classmethod
    def of(cls, *specs: str) -> "Schema":
        """Build a schema from ``"name:type"`` strings.

        Example::

            Schema.of("t:int", "lat:float", "lon:float", "id:int")
        """
        fields = []
        for spec in specs:
            try:
                name, type_name = spec.split(":")
            except ValueError:
                raise SchemaError(
                    f"field spec {spec!r} must look like 'name:type'"
                ) from None
            fields.append(Field(name.strip(), type_from_name(type_name.strip())))
        return cls(fields)

    # -- lookup ----------------------------------------------------------

    def index_of(self, name: str) -> int:
        """Position of field ``name``; raises SchemaError when absent."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"unknown field {name!r}; schema has {self.names()}"
            ) from None

    def field(self, name: str) -> Field:
        return self.fields[self.index_of(name)]

    def has_field(self, name: str) -> bool:
        return name in self._index

    def names(self) -> list[str]:
        return [f.name for f in self.fields]

    def types(self) -> list[DataType]:
        return [f.dtype for f in self.fields]

    # -- derivation ------------------------------------------------------

    def project(self, names: Iterable[str]) -> "Schema":
        """A new schema containing only ``names``, in the given order."""
        return Schema([self.field(n) for n in names])

    def append_fields(self, fields: Iterable[Field]) -> "Schema":
        """A new schema with ``fields`` appended (paper's ``append``)."""
        return Schema(list(self.fields) + list(fields))

    def record_type(self) -> NestedType:
        """The nesting type ``[l1:τ1, ..., ln:τn]`` of one record."""
        return NestedType(tuple(f.as_named_type() for f in self.fields))

    # -- sizing (used by the cost model) ----------------------------------

    def fixed_width(self) -> int | None:
        """Record byte width when all fields are fixed-size, else ``None``."""
        return self.record_type().fixed_size

    def estimated_record_size(self, record: Sequence[Any] | None = None) -> int:
        """Estimated encoded byte width of one record."""
        if record is not None:
            return sum(
                f.dtype.estimated_size(v)
                for f, v in zip(self.fields, record)
            )
        return sum(f.dtype.estimated_size() for f in self.fields)

    # -- record helpers ----------------------------------------------------

    def validate_record(self, record: Sequence[Any]) -> bool:
        if len(record) != len(self.fields):
            return False
        return all(f.dtype.validate(v) for f, v in zip(self.fields, record))

    def coerce_record(self, record: Sequence[Any]) -> tuple:
        """Coerce each value to its field type; raises on mismatch."""
        if len(record) != len(self.fields):
            raise SchemaError(
                f"record arity {len(record)} does not match schema arity "
                f"{len(self.fields)}"
            )
        return tuple(
            f.dtype.coerce(v) for f, v in zip(self.fields, record)
        )

    def record_from_dict(self, mapping: dict[str, Any]) -> tuple:
        """Build a record tuple from a field-name keyed dict."""
        missing = [f.name for f in self.fields if f.name not in mapping]
        if missing:
            raise SchemaError(f"record dict is missing field(s) {missing}")
        return tuple(mapping[f.name] for f in self.fields)

    def record_to_dict(self, record: Sequence[Any]) -> dict[str, Any]:
        return {f.name: v for f, v in zip(self.fields, record)}

    # -- dunder ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and other.fields == self.fields

    def __hash__(self) -> int:
        return hash(self.fields)

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}:{f.dtype.name}" for f in self.fields)
        return f"Schema({inner})"
