"""Data types supported by the storage algebra.

The paper (Section 3.2) defines the type grammar::

    τ := int | float | string | ... | l : τ | [τ1, ..., τn]

i.e. a collection of scalar types of fixed or variable size, a *named* type
``l : τ`` that attaches a literal name to a type, and a *nesting* type
``[τ1, ..., τn]`` that groups a list of types.

Scalar types are singletons (``INT``, ``FLOAT``, ...); named and nested types
are immutable value objects built on top of them.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import SchemaError, TypeCheckError


class DataType:
    """Base class for all storage-algebra types.

    Attributes:
        name: human-readable type name as used in the paper's grammar.
        struct_format: the :mod:`struct` format character for fixed-size
            scalars, or ``None`` for variable-size / composite types.
        fixed_size: encoded byte width for fixed-size scalars, else ``None``.
    """

    name: str = "type"
    struct_format: str | None = None
    fixed_size: int | None = None

    def validate(self, value: Any) -> bool:
        """Return True when ``value`` is storable as this type."""
        raise NotImplementedError

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` into this type's canonical Python representation.

        Raises:
            TypeCheckError: if the value cannot be represented.
        """
        if not self.validate(value):
            raise TypeCheckError(f"value {value!r} is not a valid {self.name}")
        return value

    @property
    def is_fixed_size(self) -> bool:
        return self.fixed_size is not None

    def estimated_size(self, value: Any = None) -> int:
        """Byte width used for cost estimation.

        For variable-size types the estimate uses ``value`` when provided and a
        conservative default otherwise.
        """
        if self.fixed_size is not None:
            return self.fixed_size
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self))


class IntType(DataType):
    """64-bit signed integer."""

    name = "int"
    struct_format = "q"
    fixed_size = 8
    _MIN = -(2**63)
    _MAX = 2**63 - 1

    def validate(self, value: Any) -> bool:
        return (
            isinstance(value, int)
            and not isinstance(value, bool)
            and self._MIN <= value <= self._MAX
        )

    def coerce(self, value: Any) -> int:
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        if not self.validate(value):
            raise TypeCheckError(f"value {value!r} is not a valid {self.name}")
        return value


class FloatType(DataType):
    """64-bit IEEE float (the paper's ``float``)."""

    name = "float"
    struct_format = "d"
    fixed_size = 8

    def validate(self, value: Any) -> bool:
        return isinstance(value, (int, float)) and not isinstance(value, bool)

    def coerce(self, value: Any) -> float:
        if not self.validate(value):
            raise TypeCheckError(f"value {value!r} is not a valid {self.name}")
        return float(value)


class DoubleType(FloatType):
    """Alias for a 64-bit float; kept distinct because the case-study schema
    declares ``double ID``."""

    name = "double"


class BoolType(DataType):
    """Boolean stored as a single byte."""

    name = "bool"
    struct_format = "?"
    fixed_size = 1

    def validate(self, value: Any) -> bool:
        return isinstance(value, bool)


class TimestampType(IntType):
    """Timestamp stored as a 64-bit integer (e.g. epoch seconds)."""

    name = "timestamp"


class StringType(DataType):
    """Variable-length UTF-8 string."""

    name = "string"
    struct_format = None
    fixed_size = None
    DEFAULT_ESTIMATE = 16

    def validate(self, value: Any) -> bool:
        return isinstance(value, str)

    def estimated_size(self, value: Any = None) -> int:
        if isinstance(value, str):
            return 4 + len(value.encode("utf-8"))
        return 4 + self.DEFAULT_ESTIMATE


class BytesType(DataType):
    """Variable-length raw bytes (used for compressed blocks)."""

    name = "bytes"
    struct_format = None
    fixed_size = None
    DEFAULT_ESTIMATE = 32

    def validate(self, value: Any) -> bool:
        return isinstance(value, (bytes, bytearray))

    def coerce(self, value: Any) -> bytes:
        if not self.validate(value):
            raise TypeCheckError(f"value {value!r} is not a valid {self.name}")
        return bytes(value)

    def estimated_size(self, value: Any = None) -> int:
        if isinstance(value, (bytes, bytearray)):
            return 4 + len(value)
        return 4 + self.DEFAULT_ESTIMATE


class NamedType(DataType):
    """The paper's ``l : τ`` — a type annotated with a literal name."""

    def __init__(self, label: str, base: DataType):
        if not label:
            raise SchemaError("a named type requires a non-empty label")
        self.label = label
        self.base = base

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"{self.label}:{self.base.name}"

    @property
    def struct_format(self) -> str | None:  # type: ignore[override]
        return self.base.struct_format

    @property
    def fixed_size(self) -> int | None:  # type: ignore[override]
        return self.base.fixed_size

    def validate(self, value: Any) -> bool:
        return self.base.validate(value)

    def coerce(self, value: Any) -> Any:
        return self.base.coerce(value)

    def estimated_size(self, value: Any = None) -> int:
        return self.base.estimated_size(value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NamedType)
            and other.label == self.label
            and other.base == self.base
        )

    def __hash__(self) -> int:
        return hash((self.label, self.base))


class NestedType(DataType):
    """The paper's nesting clause ``[τ1, ..., τn]``."""

    def __init__(self, element_types: Sequence[DataType]):
        self.element_types = tuple(element_types)

    @property
    def name(self) -> str:  # type: ignore[override]
        inner = ", ".join(t.name for t in self.element_types)
        return f"[{inner}]"

    @property
    def fixed_size(self) -> int | None:  # type: ignore[override]
        total = 0
        for t in self.element_types:
            if t.fixed_size is None:
                return None
            total += t.fixed_size
        return total

    def validate(self, value: Any) -> bool:
        if not isinstance(value, (list, tuple)):
            return False
        if len(value) != len(self.element_types):
            return False
        return all(t.validate(v) for t, v in zip(self.element_types, value))

    def coerce(self, value: Any) -> tuple:
        if not isinstance(value, (list, tuple)):
            raise TypeCheckError(f"value {value!r} is not a valid nesting")
        if len(value) != len(self.element_types):
            raise TypeCheckError(
                f"nesting arity mismatch: expected {len(self.element_types)}, "
                f"got {len(value)}"
            )
        return tuple(t.coerce(v) for t, v in zip(self.element_types, value))

    def estimated_size(self, value: Any = None) -> int:
        if value is not None and isinstance(value, (list, tuple)):
            return sum(
                t.estimated_size(v)
                for t, v in zip(self.element_types, value)
            )
        return sum(t.estimated_size() for t in self.element_types)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NestedType)
            and other.element_types == self.element_types
        )

    def __hash__(self) -> int:
        return hash(self.element_types)


class ListType(DataType):
    """A homogeneous, variable-length list of one element type.

    Not in the paper's grammar verbatim but needed to type the result of
    ``fold`` (which nests a *variable* number of co-occurring values).
    """

    def __init__(self, element_type: DataType):
        self.element_type = element_type

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"list<{self.element_type.name}>"

    def validate(self, value: Any) -> bool:
        if not isinstance(value, (list, tuple)):
            return False
        return all(self.element_type.validate(v) for v in value)

    def estimated_size(self, value: Any = None) -> int:
        if value is not None and isinstance(value, (list, tuple)):
            return 4 + sum(self.element_type.estimated_size(v) for v in value)
        return 4 + 4 * self.element_type.estimated_size()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ListType)
            and other.element_type == self.element_type
        )

    def __hash__(self) -> int:
        return hash(("list", self.element_type))


# Singleton scalar instances, mirroring the paper's `int | float | string | ...`
INT = IntType()
FLOAT = FloatType()
DOUBLE = DoubleType()
BOOL = BoolType()
TIMESTAMP = TimestampType()
STRING = StringType()
BYTES = BytesType()

_BY_NAME: dict[str, DataType] = {
    t.name: t for t in (INT, FLOAT, DOUBLE, BOOL, TIMESTAMP, STRING, BYTES)
}


def type_from_name(name: str) -> DataType:
    """Look up a scalar type by its grammar name (``int``, ``float``, ...)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise SchemaError(f"unknown type name {name!r}") from None


def named(label: str, base: DataType) -> NamedType:
    """Convenience constructor for the ``l : τ`` grammar production."""
    return NamedType(label, base)


def nesting(element_types: Iterable[DataType]) -> NestedType:
    """Convenience constructor for the ``[τ1, ..., τn]`` grammar production."""
    return NestedType(tuple(element_types))
