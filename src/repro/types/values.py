"""Value helpers shared across the library.

Records are plain tuples; nestings are (possibly recursive) lists/tuples of
records or scalars. This module provides ordering keys, flattening (the
paper's physical representation φ), and depth/shape inspection for nestings.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

Record = tuple
Nesting = list


def sort_key(
    positions: Sequence[int], descending: Sequence[bool] | None = None
) -> Callable[[Sequence[Any]], tuple]:
    """Build a sort key over record positions with per-position direction.

    Python's ``sorted`` is stable, so mixed-direction multi-attribute ordering
    is implemented by negating numeric values where possible and falling back
    to repeated stable sorts elsewhere (see :func:`multisort`).
    """
    if descending is None:
        descending = [False] * len(positions)

    def key(record: Sequence[Any]) -> tuple:
        return tuple(record[p] for p in positions)

    if not any(descending):
        return key

    def directional_key(record: Sequence[Any]) -> tuple:
        parts = []
        for p, desc in zip(positions, descending):
            v = record[p]
            if desc and isinstance(v, (int, float)) and not isinstance(v, bool):
                parts.append(-v)
            else:
                parts.append(v)
        return tuple(parts)

    return directional_key


def multisort(
    records: Iterable[Sequence[Any]],
    positions: Sequence[int],
    descending: Sequence[bool] | None = None,
) -> list:
    """Sort records on multiple positions with per-position direction.

    Handles non-numeric descending attributes correctly by applying stable
    sorts from the least-significant key to the most-significant one.
    """
    result = list(records)
    if descending is None:
        descending = [False] * len(positions)
    for pos, desc in reversed(list(zip(positions, descending))):
        result.sort(key=lambda r, p=pos: r[p], reverse=desc)
    return result


def flatten(nesting: Any) -> list:
    """The paper's physical representation φ(N).

    Recursively enumerate all entries of a nesting starting from the leftmost
    entry, producing the flat list of leaf values in storage order.
    """
    out: list = []
    _flatten_into(nesting, out)
    return out


def _flatten_into(value: Any, out: list) -> None:
    if isinstance(value, (list, tuple)):
        for item in value:
            _flatten_into(item, out)
    else:
        out.append(value)


def iter_leaves(nesting: Any) -> Iterator[Any]:
    """Lazy variant of :func:`flatten`."""
    if isinstance(nesting, (list, tuple)):
        for item in nesting:
            yield from iter_leaves(item)
    else:
        yield nesting


def depth(nesting: Any) -> int:
    """Maximum nesting depth: scalars are depth 0, ``[1,2]`` is depth 1."""
    if not isinstance(nesting, (list, tuple)):
        return 0
    if len(nesting) == 0:
        return 1
    return 1 + max(depth(item) for item in nesting)


def shape(nesting: Any) -> tuple | None:
    """Rectangular shape of a nesting, or ``None`` when ragged.

    ``shape([[1,2,3],[4,5,6]]) == (2, 3)``; a ragged nesting such as
    ``[[1],[2,3]]`` has no rectangular shape.
    """
    if not isinstance(nesting, (list, tuple)):
        return ()
    sub_shapes = {shape(item) for item in nesting}
    if len(sub_shapes) > 1 or None in sub_shapes:
        return None
    inner = sub_shapes.pop() if sub_shapes else ()
    if inner is None:
        return None
    return (len(nesting),) + inner


def count_leaves(nesting: Any) -> int:
    """Number of scalar leaves in a nesting."""
    if not isinstance(nesting, (list, tuple)):
        return 1
    return sum(count_leaves(item) for item in nesting)


def records_equal(a: Sequence[Any], b: Sequence[Any]) -> bool:
    """Structural equality tolerant of list/tuple representation mixes."""
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            return False
        return all(records_equal(x, y) for x, y in zip(a, b))
    return a == b


def normalize(nesting: Any) -> Any:
    """Canonicalize a nesting: inner sequences become lists, leaves unchanged.

    Useful in tests to compare results irrespective of list/tuple mixing.
    """
    if isinstance(nesting, (list, tuple)):
        return [normalize(item) for item in nesting]
    return nesting
