"""Typed-vector support for the vectorized execution core.

Columns travel through the batch layer as one of three physical shapes,
uniformly called a *vector*:

* a ``numpy.ndarray`` (``int64``/``float64``) when numpy is importable —
  the fast path;
* a stdlib ``array.array`` (typecode ``"q"``/``"d"``) — the pure-Python
  fallback, still contiguous and bulk-decodable;
* a plain ``list`` — the graceful-degradation shape for strings, bools,
  mixed/null data, and any codec that has no typed decode.

Every helper here accepts all three shapes so callers never branch on
numpy availability; behavior is identical either way, only speed differs.
``set_numpy_enabled(False)`` (or ``REPRO_NO_NUMPY=1``) forces the
fallback even when numpy is installed, which is how tests assert parity.
"""

from __future__ import annotations

import os
import sys
from array import array
from typing import Any, Iterable, Sequence

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _numpy_mod
except ImportError:  # pragma: no cover
    _numpy_mod = None

#: The active numpy module, or None when absent/disabled at runtime.
_np = None if os.environ.get("REPRO_NO_NUMPY") else _numpy_mod

#: struct typecodes we promote to contiguous buffers. Bools stay lists:
#: ``array`` has no ``"?"`` typecode and masks of three-ish distinct
#: values vectorize poorly anyway.
_NUMERIC_TYPECODES = frozenset("qd")

_NP_DTYPES = {"q": "<i8", "d": "<f8"}


def numpy_module():
    """The numpy module if importable, regardless of the runtime toggle."""
    return _numpy_mod


def numpy_enabled() -> bool:
    return _np is not None


def set_numpy_enabled(enabled: bool) -> bool:
    """Toggle the numpy fast path at runtime (testing/benchmarking hook).

    Only affects vectors built *after* the call — typed vectors already
    cached inside live stores keep their shape. Parity tests therefore
    always build fresh stores after toggling. Returns the previous state.
    """
    global _np
    previous = _np is not None
    _np = _numpy_mod if (enabled and _numpy_mod is not None) else None
    return previous


def typecode_for(dtype) -> str | None:
    """``"q"``/``"d"`` for fixed 8-byte numeric types, else None.

    Accepts NamedType wrappers (unwraps ``.base``). STRING/BYTES have no
    struct format and BOOL ("?") is deliberately excluded — both decode
    to plain lists.
    """
    base = getattr(dtype, "base", dtype)
    fmt = getattr(base, "struct_format", None)
    return fmt if fmt in _NUMERIC_TYPECODES else None


def from_bytes(data, offset: int, count: int, code: str):
    """Wrap ``count`` packed little-endian elements starting at ``offset``
    into a typed vector — zero-copy under numpy, one bulk copy under the
    ``array`` fallback."""
    if count <= 0:
        return _np.empty(0, dtype=_NP_DTYPES[code]) if _np is not None else array(code)
    if _np is not None:
        return _np.frombuffer(data, dtype=_NP_DTYPES[code], count=count, offset=offset)
    vec = array(code)
    end = offset + count * vec.itemsize
    vec.frombytes(bytes(data[offset:end]))
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        vec.byteswap()
    return vec


def from_values(values: Sequence, code: str):
    """A typed vector from already-decoded python scalars, or None when
    the values don't fit the typecode (e.g. a None snuck in)."""
    try:
        if _np is not None:
            out = _np.asarray(values, dtype=_NP_DTYPES[code])
            if len(out) != len(values):  # pragma: no cover - defensive
                return None
            return out
        return array(code, values)
    except (TypeError, ValueError, OverflowError):
        return None


def is_typed(vec) -> bool:
    """True when the vector is a contiguous typed buffer (not a list)."""
    return not isinstance(vec, list)


def to_list(vec) -> list:
    """Materialize native python scalars. Lists pass through unchanged;
    ndarray/array use their bulk ``tolist`` (never ``list(ndarray)``,
    which would leak numpy scalars into row tuples)."""
    if isinstance(vec, list):
        return vec
    return vec.tolist()


def concat(parts: list):
    """Concatenate column fragments, preserving the typed shape when all
    fragments share it; degrades to a plain list otherwise."""
    if len(parts) == 1:
        return parts[0]
    if _np is not None and all(isinstance(p, _np.ndarray) for p in parts):
        return _np.concatenate(parts)
    if (
        all(isinstance(p, array) for p in parts)
        and len({p.typecode for p in parts}) == 1
    ):
        out = array(parts[0].typecode)
        for p in parts:
            out.extend(p)
        return out
    out = []
    for p in parts:
        out.extend(to_list(p))
    return out


def mask_count(mask) -> int:
    """Number of selected rows in a boolean selection mask."""
    if _numpy_mod is not None and isinstance(mask, _numpy_mod.ndarray):
        return int(mask.sum())
    return sum(mask)


def apply_mask(vec, mask) -> list | Any:
    """Rows of ``vec`` where ``mask`` is true. ndarray×ndarray uses fancy
    indexing (stays typed); every other combination compresses to a list."""
    np_mod = _numpy_mod
    if np_mod is not None and isinstance(mask, np_mod.ndarray):
        if isinstance(vec, np_mod.ndarray):
            return vec[mask]
        mask = mask.tolist()
    if not isinstance(vec, list):
        vec = vec.tolist()
    return [v for v, keep in zip(vec, mask) if keep]


def as_ndarray(vec):
    """A numpy view of a typed vector, or None when numpy is disabled or
    the vector is a plain list. ``array`` fallback vectors get a
    zero-copy ``frombuffer`` view."""
    if _np is None:
        return None
    if isinstance(vec, _np.ndarray):
        return vec if vec.dtype.kind in "if" else None
    if isinstance(vec, array) and vec.typecode in _NUMERIC_TYPECODES and len(vec):
        return _np.frombuffer(vec, dtype=_NP_DTYPES[vec.typecode])
    if isinstance(vec, array):
        return _np.empty(0, dtype=_NP_DTYPES.get(vec.typecode, "<i8"))
    return None
