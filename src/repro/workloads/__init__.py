"""Synthetic workload generators (substitutes for the paper's datasets)."""

from repro.workloads.cartel import (
    BOSTON,
    TRACE_SCHEMA,
    Region,
    generate_traces,
    grid_strides_for,
    random_region_queries,
    trajectories,
    trajectory_mbrs,
)
from repro.workloads.rdf import (
    TRIPLE_SCHEMA,
    VERTICAL_PARTITION_EXPR,
    generate_triples,
    predicate_queries,
)
from repro.workloads.sales import (
    SALES_SCHEMA,
    generate_sales,
    narrow_column_queries,
    year_zip_queries,
)
from repro.workloads.timeseries import (
    TIMESERIES_SCHEMA,
    generate_timeseries,
    series_column,
)

__all__ = [
    "BOSTON",
    "SALES_SCHEMA",
    "TRIPLE_SCHEMA",
    "VERTICAL_PARTITION_EXPR",
    "generate_triples",
    "predicate_queries",
    "TIMESERIES_SCHEMA",
    "TRACE_SCHEMA",
    "Region",
    "generate_sales",
    "generate_timeseries",
    "generate_traces",
    "grid_strides_for",
    "narrow_column_queries",
    "random_region_queries",
    "series_column",
    "trajectories",
    "trajectory_mbrs",
    "year_zip_queries",
]
