"""Synthetic CarTel-style GPS trace workload.

The paper's case study uses proprietary CarTel data: "hundred of thousands of
motion traces from a fleet of cars in Boston", ten million observations over
the greater Boston area. This generator is the documented substitute
(DESIGN.md §2): correlated random-walk vehicles over a Boston-sized bounding
box, emitting fixed-precision GPS observations.

Fidelity notes:

* Coordinates are **integer microdegrees** — GPS receivers emit fixed-point
  NMEA coordinates, and fixed precision is what makes the paper's delta
  compression effective (consecutive readings differ by tiny integers).
* Vehicles move smoothly (heading persistence), so per-trajectory points are
  spatially clustered and consecutive deltas are small.
* Vehicle streams are chopped into *trips* ("trajectories"); trip bounding
  boxes overlap heavily across the dense urban core, which is precisely the
  property that makes the R-Tree baseline suboptimal in Figure 2.
* Each observation carries extra attributes beyond (t, lat, lon, id) —
  "There are a number of additional attributes for each reading that we
  omit" — so that dropping unused columns (layout N2) shows a realistic
  payoff.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.query.expressions import Rect
from repro.types.schema import Schema

# Greater-Boston-ish bounding box, in microdegrees.
DEFAULT_REGION = (42_300_000, 42_420_000, -71_150_000, -70_990_000)

#: The case-study logical schema: Traces(int t, lat, lon, ID, ...extras).
TRACE_SCHEMA = Schema.of(
    "t:int",
    "lat:int",  # microdegrees
    "lon:int",  # microdegrees
    "id:int",  # trajectory (trip) identifier
    "vehicle:int",
    "speed:int",  # cm/s
    "heading:int",  # decidegrees
    "altitude:int",  # decimeters
    "hdop:int",  # horizontal dilution of precision x100
    "satellites:int",
    "odometer:int",  # meters since trip start
    "fuel:int",  # milliliters consumed
)


@dataclass(frozen=True)
class Region:
    """A lat/lon box in microdegrees."""

    lat_min: int
    lat_max: int
    lon_min: int
    lon_max: int

    @property
    def lat_span(self) -> int:
        return self.lat_max - self.lat_min

    @property
    def lon_span(self) -> int:
        return self.lon_max - self.lon_min

    @property
    def area(self) -> float:
        return float(self.lat_span) * float(self.lon_span)


BOSTON = Region(*DEFAULT_REGION)


def generate_traces(
    n_observations: int,
    n_vehicles: int = 25,
    trip_length: int = 400,
    region: Region = BOSTON,
    seed: int = 42,
) -> list[tuple]:
    """Generate ``n_observations`` GPS readings across ``n_vehicles``.

    Returns records conforming to :data:`TRACE_SCHEMA`, ordered by timestamp
    (interleaved across vehicles) — the arrival order a telematics system
    would ingest.
    """
    rng = random.Random(seed)
    vehicles = [_Vehicle(v, region, rng, trip_length) for v in range(n_vehicles)]
    records: list[tuple] = []
    t = 0
    while len(records) < n_observations:
        for vehicle in vehicles:
            if len(records) >= n_observations:
                break
            records.append(vehicle.step(t))
        t += 1
    return records


class _Vehicle:
    """A taxi-like vehicle driving between random waypoints.

    Each trip heads toward a randomly chosen destination with small heading
    noise; reaching it (or exceeding ``trip_length`` points) starts a new
    trip *from the current position*. Trips therefore span large, randomly
    oriented rectangles that overlap heavily across the urban core — the
    property that makes the paper's R-Tree baseline suboptimal.
    """

    # ~14 m/s city driving; one microdegree of latitude is ~0.11 m.
    _BASE_STEP = 130  # microdegrees per tick

    def __init__(
        self, vehicle_id: int, region: Region, rng: random.Random, trip_length: int
    ):
        self.vehicle_id = vehicle_id
        self.region = region
        self.rng = rng
        self.trip_length = trip_length
        self.lat = rng.randrange(region.lat_min, region.lat_max)
        self.lon = rng.randrange(region.lon_min, region.lon_max)
        self.speed_factor = rng.uniform(0.7, 1.3)
        self.points_in_trip = 0
        self.trip_index = 0
        self.odometer = 0
        self.fuel = 0
        self._pick_destination()

    def _pick_destination(self) -> None:
        # Half of all trips head for the urban core (hub-and-spoke taxi
        # pattern); the rest go anywhere. Core-bound trips are what stack
        # trajectory bounding boxes on top of each other downtown.
        region = self.region
        if self.rng.random() < 0.5:
            mid_lat = (region.lat_min + region.lat_max) // 2
            mid_lon = (region.lon_min + region.lon_max) // 2
            core_lat = region.lat_span // 8
            core_lon = region.lon_span // 8
            self.dest_lat = self.rng.randrange(
                mid_lat - core_lat, mid_lat + core_lat
            )
            self.dest_lon = self.rng.randrange(
                mid_lon - core_lon, mid_lon + core_lon
            )
        else:
            self.dest_lat = self.rng.randrange(region.lat_min, region.lat_max)
            self.dest_lon = self.rng.randrange(region.lon_min, region.lon_max)

    @property
    def trip_id(self) -> int:
        return self.vehicle_id * 100_000 + self.trip_index

    def step(self, t: int) -> tuple:
        rng = self.rng
        arrived = (
            abs(self.dest_lat - self.lat) + abs(self.dest_lon - self.lon)
            < 2 * self._BASE_STEP
        )
        if arrived or self.points_in_trip >= self.trip_length:
            self.trip_index += 1
            self.points_in_trip = 0
            self.odometer = 0
            self._pick_destination()
        heading = math.atan2(
            self.dest_lat - self.lat, self.dest_lon - self.lon
        ) + rng.gauss(0, 0.3)
        step = self._BASE_STEP * self.speed_factor * rng.uniform(0.3, 1.2)
        dlat = int(step * math.sin(heading))
        dlon = int(step * math.cos(heading))
        self.lat = _bounce(self.lat + dlat, self.region.lat_min, self.region.lat_max)
        self.lon = _bounce(self.lon + dlon, self.region.lon_min, self.region.lon_max)
        self.points_in_trip += 1
        self.odometer += int(step * 0.11)
        self.fuel += rng.randrange(1, 4)
        return (
            t,
            self.lat,
            self.lon,
            self.trip_id,
            self.vehicle_id,
            int(step * 11),  # cm/s
            int(math.degrees(heading) * 10) % 3600,
            rng.randrange(0, 500),
            rng.randrange(50, 300),
            rng.randrange(4, 13),
            self.odometer,
            self.fuel,
        )


def _bounce(value: int, lo: int, hi: int) -> int:
    if value < lo:
        return lo + (lo - value)
    if value > hi:
        return hi - (value - hi)
    return value


def random_region_queries(
    n_queries: int,
    coverage: float = 0.01,
    region: Region = BOSTON,
    seed: int = 7,
) -> list[Rect]:
    """Random square queries, each covering ``coverage`` of the area.

    Matches the case study: "200 random geographical queries retrieving
    square regions covering 1% of the total area considered".
    """
    rng = random.Random(seed)
    side_lat = int(math.sqrt(coverage) * region.lat_span)
    side_lon = int(math.sqrt(coverage) * region.lon_span)
    queries: list[Rect] = []
    for _ in range(n_queries):
        lat0 = rng.randrange(region.lat_min, region.lat_max - side_lat)
        lon0 = rng.randrange(region.lon_min, region.lon_max - side_lon)
        queries.append(
            Rect(
                {
                    "lat": (lat0, lat0 + side_lat),
                    "lon": (lon0, lon0 + side_lon),
                }
            )
        )
    return queries


def trajectories(records: Sequence[tuple]) -> dict[int, list[tuple]]:
    """Group observations by trajectory (trip) id, preserving time order."""
    by_trip: dict[int, list[tuple]] = {}
    for record in records:
        by_trip.setdefault(record[3], []).append(record)
    return by_trip


def trajectory_mbrs(
    records: Sequence[tuple],
) -> list[tuple[int, tuple[int, int, int, int]]]:
    """(trip id, (lat_min, lat_max, lon_min, lon_max)) per trajectory."""
    out: list[tuple[int, tuple[int, int, int, int]]] = []
    for trip_id, points in trajectories(records).items():
        lats = [p[1] for p in points]
        lons = [p[2] for p in points]
        out.append((trip_id, (min(lats), max(lats), min(lons), max(lons))))
    return out


def grid_strides_for(
    region: Region, cells_per_side: int = 32
) -> tuple[float, float]:
    """Stride pair giving roughly ``cells_per_side``² cells over the region.

    The case study's cells are "about 400 m²" at city scale; at benchmark
    scale we keep the *ratio* of cell side to query side comparable.
    """
    return (
        region.lat_span / cells_per_side,
        region.lon_span / cells_per_side,
    )
