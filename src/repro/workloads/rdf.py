"""Synthetic RDF triple workload.

Paper §7: "Our system can handle unusual storage schemes — such as
attribute-dependent layouts for RDF data [2] — while still exposing logical
tables". The cited scheme (Abadi et al., VLDB 2007) is *vertical
partitioning*: one (subject, object) table per predicate. In the storage
algebra that layout is simply::

    fold[subject, object; predicate](Triples)

— each predicate's pairs become one nested group, the predicate value is
stored once per group, and a predicate-bounded scan touches only that
group's bytes.
"""

from __future__ import annotations

import random

from repro.query.expressions import Range
from repro.types.schema import Schema

TRIPLE_SCHEMA = Schema.of("subject:int", "predicate:int", "object:int")

#: The algebra expression realizing Abadi-style vertical partitioning.
VERTICAL_PARTITION_EXPR = "fold[subject, object; predicate](Triples)"


def generate_triples(
    n_triples: int,
    n_subjects: int = 2000,
    n_predicates: int = 24,
    seed: int = 17,
) -> list[tuple]:
    """Generate triples with a Zipf-ish predicate distribution.

    Real RDF data concentrates on few predicates (rdf:type, labels, ...);
    the skew is what makes per-predicate isolation pay off.
    """
    rng = random.Random(seed)
    records: list[tuple] = []
    for _ in range(n_triples):
        subject = rng.randrange(n_subjects)
        predicate = min(
            int(rng.paretovariate(1.1)) % n_predicates, n_predicates - 1
        )
        if predicate == 0:
            # rdf:type-like: object drawn from a tiny class vocabulary.
            obj = rng.randrange(50)
        else:
            obj = rng.randrange(n_subjects)
        records.append((subject, predicate, obj))
    return records


def predicate_queries(
    n_queries: int, n_predicates: int = 24, seed: int = 19
) -> list[Range]:
    """Per-predicate lookups: the access pattern vertical partitioning serves."""
    rng = random.Random(seed)
    return [
        Range("predicate", p, p)
        for p in (rng.randrange(n_predicates) for _ in range(n_queries))
    ]
