"""Synthetic sales-records workload (the paper's §1 motivating example).

    N = (zipcode:z, year:y, month:m, day:d, customerid:c, productid:p ...)

and the expression ``zorder(grid[y, z](N))`` that co-locates nearby zipcodes
and years. The generator produces OLAP-flavoured data: zipcodes clustered by
metro area, Zipf-ish product popularity, seasonal volume.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.query.expressions import Range, Rect
from repro.types.schema import Schema

SALES_SCHEMA = Schema.of(
    "zipcode:int",
    "year:int",
    "month:int",
    "day:int",
    "customerid:int",
    "productid:int",
    "quantity:int",
    "price:int",  # cents
)

_METRO_BASES = (2100, 10000, 60600, 94100, 33100)  # Boston, NYC, CHI, SF, MIA


def generate_sales(
    n_records: int,
    years: tuple[int, int] = (2000, 2008),
    n_products: int = 500,
    n_customers: int = 2000,
    seed: int = 11,
) -> list[tuple]:
    """Generate ``n_records`` sales rows under :data:`SALES_SCHEMA`."""
    rng = random.Random(seed)
    records: list[tuple] = []
    year_lo, year_hi = years
    for _ in range(n_records):
        metro = rng.choice(_METRO_BASES)
        zipcode = metro + rng.randrange(0, 100)
        year = rng.randrange(year_lo, year_hi + 1)
        month = rng.randrange(1, 13)
        day = rng.randrange(1, 29)
        customer = rng.randrange(n_customers)
        # Zipf-ish product popularity: low ids sell far more.
        product = min(
            int(rng.paretovariate(1.2)) % n_products, n_products - 1
        )
        quantity = rng.randrange(1, 10)
        price = rng.randrange(99, 99_999)
        records.append(
            (zipcode, year, month, day, customer, product, quantity, price)
        )
    return records


def year_zip_queries(
    n_queries: int,
    years: tuple[int, int] = (2000, 2008),
    zip_window: int = 50,
    seed: int = 5,
) -> list[Rect]:
    """Year × zipcode-window slice queries (what ``grid[y, z]`` serves)."""
    rng = random.Random(seed)
    queries: list[Rect] = []
    for _ in range(n_queries):
        year = rng.randrange(years[0], years[1] + 1)
        metro = rng.choice(_METRO_BASES)
        zip_lo = metro + rng.randrange(0, 100 - zip_window)
        queries.append(
            Rect(
                {
                    "year": (year, year),
                    "zipcode": (zip_lo, zip_lo + zip_window),
                }
            )
        )
    return queries


def narrow_column_queries(seed: int = 3) -> list[tuple[list[str], Range]]:
    """(projection, predicate) pairs touching few columns — the OLAP shape
    that motivates column stores in the paper's introduction."""
    rng = random.Random(seed)
    out: list[tuple[list[str], Range]] = []
    for year in range(2000, 2009):
        out.append(
            (["productid", "quantity"], Range("year", year, year))
        )
    metro = rng.choice(_METRO_BASES)
    out.append((["price"], Range("zipcode", metro, metro + 99)))
    return out
