"""Synthetic sensor time series.

Exercises the algebra's time-series claims ("nestings can also naturally
support time-series values", §3.4) and feeds the compression-codec ablation:
smooth series where delta/XOR codecs shine, plus step series where RLE and
dictionary coding win.
"""

from __future__ import annotations

import math
import random
from typing import Literal

from repro.types.schema import Schema

TIMESERIES_SCHEMA = Schema.of("series:int", "t:int", "value:int")


def generate_timeseries(
    n_points: int,
    n_series: int = 8,
    kind: Literal["smooth", "steppy", "noisy"] = "smooth",
    seed: int = 23,
) -> list[tuple]:
    """``n_points`` readings across ``n_series`` sensors.

    Kinds:
        smooth — slowly drifting values (temperature-like): tiny deltas;
        steppy — long constant runs (status/enum-like): RLE-friendly;
        noisy  — white noise: incompressible control case.
    """
    rng = random.Random(seed)
    states = [rng.randrange(1000, 5000) for _ in range(n_series)]
    phases = [rng.uniform(0, 2 * math.pi) for _ in range(n_series)]
    records: list[tuple] = []
    t = 0
    while len(records) < n_points:
        for s in range(n_series):
            if len(records) >= n_points:
                break
            if kind == "smooth":
                drift = int(3 * math.sin(t / 50 + phases[s])) + rng.randrange(-2, 3)
                states[s] += drift
            elif kind == "steppy":
                if rng.random() < 0.02:
                    states[s] = rng.randrange(0, 8) * 500
            else:  # noisy
                states[s] = rng.randrange(0, 1 << 30)
            records.append((s, t, states[s]))
        t += 1
    return records


def series_column(records: list[tuple], series: int) -> list[int]:
    """The value column of one series, in time order."""
    return [r[2] for r in records if r[0] == series]
