"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.engine.database import RodentStore
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.types.schema import Schema


@pytest.fixture
def schema() -> Schema:
    return Schema.of("t:int", "lat:int", "lon:int", "id:int")


@pytest.fixture
def records(schema) -> list[tuple]:
    # Deterministic, covers duplicates in id and spatial spread.
    return [
        (i, (i * 37) % 500, (i * 53) % 500, i % 7)
        for i in range(600)
    ]


@pytest.fixture
def disk() -> DiskManager:
    return DiskManager(page_size=1024)


@pytest.fixture
def pool(disk) -> BufferPool:
    return BufferPool(disk, capacity=64)


@pytest.fixture
def store() -> RodentStore:
    return RodentStore(page_size=1024, pool_capacity=64)


@pytest.fixture
def loaded_store(store, schema, records) -> RodentStore:
    store.create_table("T", schema)
    store.load("T", records)
    return store
