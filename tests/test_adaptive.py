"""Tests for the adaptive loop: monitor decay, hysteresis, policies,
persistence, and the end-to-end monitor → advise → reorganize cycle."""

from __future__ import annotations

import pytest

from repro.engine.database import RodentStore
from repro.optimizer.monitor import WorkloadMonitor, access_signature
from repro.optimizer.workload import Query, Workload
from repro.query.expressions import Range, Rect
from repro.types.schema import Schema

SCHEMA = Schema.of("t:int", "g:int", "v:int", "w:int")


def make_records(n: int) -> list[tuple]:
    return [(i, i % 10, (i * 7) % 100, (i * 3) % 50) for i in range(n)]


def make_store(n: int = 4000, **kwargs) -> RodentStore:
    store = RodentStore(page_size=1024, pool_capacity=64, **kwargs)
    store.create_table("T", SCHEMA)
    store.load("T", make_records(n))
    return store


# ---------------------------------------------------------------------------
# WorkloadMonitor: decay math and pattern folding
# ---------------------------------------------------------------------------


class TestMonitorDecay:
    def test_first_observation_has_unit_weight(self):
        monitor = WorkloadMonitor("T", decay=0.9)
        key = monitor.observe(("v",), None, ())
        assert monitor.patterns[key].weight == pytest.approx(1.0)
        assert monitor.ticks == 1

    def test_repeat_observation_accumulates_with_decay(self):
        monitor = WorkloadMonitor("T", decay=0.9)
        key = monitor.observe(("v",), None, ())
        monitor.observe(("v",), None, ())
        # w = 1 * 0.9**1 + 1
        assert monitor.patterns[key].weight == pytest.approx(1.9)
        monitor.observe(("v",), None, ())
        assert monitor.patterns[key].weight == pytest.approx(1.9 * 0.9 + 1)

    def test_idle_pattern_fades_against_new_shape(self):
        monitor = WorkloadMonitor("T", decay=0.5)
        old = monitor.observe(("t",), None, ())
        for _ in range(10):
            new = monitor.observe(("v",), None, ())
        now = monitor.ticks
        old_w = monitor.patterns[old].decayed_weight(now, monitor.decay)
        new_w = monitor.patterns[new].decayed_weight(now, monitor.decay)
        assert old_w < 0.01
        assert new_w > 1.5

    def test_same_template_different_constants_is_one_pattern(self):
        monitor = WorkloadMonitor("T")
        k1 = monitor.observe(("v",), Range("t", 0, 10), ())
        k2 = monitor.observe(("v",), Range("t", 50, 90), ())
        assert k1 == k2
        assert len(monitor.patterns) == 1
        # Representative ranges are the running envelope.
        assert monitor.patterns[k1].ranges["t"] == (0, 90)

    def test_distinct_shapes_are_distinct_patterns(self):
        monitor = WorkloadMonitor("T")
        k1 = monitor.observe(("v",), Range("t", 0, 10), ())
        k2 = monitor.observe(("v", "w"), Range("t", 0, 10), ())
        k3 = monitor.observe(("v",), Range("t", 0, 10), (("t", True),))
        assert len({k1, k2, k3}) == 3

    def test_result_cardinality_decayed_mean(self):
        monitor = WorkloadMonitor("T")
        key = monitor.observe(("v",), None, ())
        monitor.record_result(key, 100)
        assert monitor.patterns[key].avg_rows == pytest.approx(100.0)
        monitor.record_result(key, 200)
        assert monitor.patterns[key].avg_rows == pytest.approx(
            0.8 * 100 + 0.2 * 200
        )

    def test_to_workload_carries_decayed_weights(self):
        monitor = WorkloadMonitor("T", decay=0.5)
        monitor.observe(("t",), None, ())
        for _ in range(5):
            monitor.observe(("v",), Range("t", 0, 10), ())
        workload = monitor.to_workload()
        assert workload.table == "T"
        assert workload.queries  # dominant pattern first
        dominant = workload.queries[0]
        assert dominant.fieldlist == ("v",)
        assert dominant.predicate is not None
        assert dominant.predicate.ranges() == {"t": (0, 10)}
        weights = [q.weight for q in workload.queries]
        assert weights == sorted(weights, reverse=True)

    def test_estimation_feedback_q_error(self):
        monitor = WorkloadMonitor("T")
        monitor.record_estimate(100.0, 100.0)
        assert monitor.feedback.mean_q_error == pytest.approx(1.0)
        monitor.record_estimate(10.0, 100.0)
        assert monitor.feedback.mean_q_error > 1.5

    def test_pattern_cap_is_enforced(self):
        from repro.optimizer.monitor import MAX_PATTERNS

        monitor = WorkloadMonitor("T", decay=0.999)  # barely fades
        for i in range(MAX_PATTERNS + 64):
            monitor.observe((f"f{i}",), None, ())
        assert len(monitor.patterns) <= MAX_PATTERNS
        # The newest pattern survives its own insertion's compaction.
        newest_key, _, _ = access_signature(
            (f"f{MAX_PATTERNS + 63}",), None, ()
        )
        assert newest_key in monitor.patterns

    def test_signature_ignores_residual_constants(self):
        key1, ranges1, _ = access_signature(("v",), Range("t", 1, 2), ())
        key2, ranges2, _ = access_signature(("v",), Range("t", 5, 9), ())
        assert key1 == key2
        assert ranges1 != ranges2

    def test_monitor_round_trip(self):
        monitor = WorkloadMonitor("T", decay=0.7)
        key = monitor.observe(("v",), Rect({"t": (0, 10), "g": (1, 3)}), ())
        monitor.record_result(key, 42)
        monitor.record_estimate(40.0, 42.0)
        restored = WorkloadMonitor.from_dict(monitor.to_dict())
        assert restored.table == "T"
        assert restored.decay == pytest.approx(0.7)
        assert restored.ticks == monitor.ticks
        assert set(restored.patterns) == set(monitor.patterns)
        pattern = restored.patterns[key]
        assert pattern.ranges == {"t": (0, 10), "g": (1, 3)}
        assert pattern.avg_rows == pytest.approx(42.0)
        assert restored.feedback.samples == 1


# ---------------------------------------------------------------------------
# Workload decayed merge
# ---------------------------------------------------------------------------


class TestWorkloadMerge:
    def test_merge_decays_existing_and_accumulates_matching(self):
        seed = Workload("T").add(
            Query("q0", fieldlist=("v",), predicate=Range("t", 0, 10), weight=4.0)
        )
        observed = Workload("T").add(
            Query("o0", fieldlist=("v",), predicate=Range("t", 20, 30), weight=1.0)
        ).add(Query("o1", fieldlist=("w",), weight=2.0))
        merged = seed.merge_decayed(observed, decay=0.5)
        assert len(merged.queries) == 2
        same_template = merged.queries[0]
        assert same_template.weight == pytest.approx(4.0 * 0.5 + 1.0)
        # Newer constants win for the matched template.
        assert same_template.predicate.ranges() == {"t": (20, 30)}
        assert merged.queries[1].weight == pytest.approx(2.0)

    def test_merge_rejects_other_table(self):
        with pytest.raises(ValueError):
            Workload("A").merge_decayed(Workload("B"))


# ---------------------------------------------------------------------------
# AdaptiveController: hysteresis, amortization, policies
# ---------------------------------------------------------------------------


class TestHysteresis:
    def test_no_thrash_within_margin(self):
        # At 500 rows the seek term dominates: columns(T) is predicted only
        # marginally cheaper than rows, inside the default 15% margin.
        store = make_store(n=500)
        table = store.table("T")
        for _ in range(20):
            list(table.scan(fieldlist=["v"]))
        before = store.table("T").plan.expr.to_text()
        for _ in range(3):
            decision = store.adapt("T")
            assert decision["adapted"] is False
        assert "hysteresis" in store.adaptivity.decisions["T"]["reason"]
        assert store.table("T").plan.expr.to_text() == before
        assert store.adaptivity.adaptations == 0

    def test_adopted_design_is_stable(self):
        # Once adopted, the new incumbent must win the next checks — the
        # loop settles instead of oscillating.
        store = make_store(n=4000)
        table = store.table("T")
        for _ in range(20):
            list(table.scan(fieldlist=["v"]))
        first = store.adapt("T")
        assert first["adapted"] is True
        assert store.table("T").plan.kind == "columns"
        for _ in range(5):
            list(store.table("T").scan(fieldlist=["v"]))
            decision = store.adapt("T")
            assert decision["adapted"] is False
            assert decision["reason"] == "incumbent is optimal"
        assert store.adaptivity.adaptations == 1

    def test_periodic_check_requires_enabled(self):
        store = make_store(n=4000)  # adaptive defaults to off
        table = store.table("T")
        for _ in range(200):
            list(table.scan(fieldlist=["v"], limit=1))
        assert store.table("T").plan.kind == "rows"
        assert store.adaptivity.checks == 0

    def test_adaptive_flag_is_a_settable_bool(self):
        store = make_store(n=4000, adaptive=True, adapt_interval=5)
        assert store.adaptive is True
        store.adaptive = False  # symmetric with store.zone_pruning
        table = store.table("T")
        for _ in range(40):
            list(table.scan(fieldlist=["v"]))
        assert store.table("T").plan.kind == "rows"
        assert store.adaptivity.checks == 0
        store.adaptive = True
        for _ in range(10):
            list(store.table("T").scan(fieldlist=["v"]))
        assert store.table("T").plan.kind == "columns"

    def test_automatic_adaptation_defers_while_a_scan_is_in_flight(self):
        # An automatic re-layout frees the old layout's pages; it must
        # never fire under a mid-iteration reader.
        store = make_store(n=4000, adaptive=True, adapt_interval=5)
        reader = store.table("T").scan()
        first = next(reader)  # reader is now live on the row layout
        for _ in range(40):
            list(store.table("T").scan(fieldlist=["v"]))
        assert store.table("T").plan.kind == "rows"  # deferred
        rest = list(reader)  # completes correctly, then releases the gate
        assert [first] + rest == make_records(4000)
        for _ in range(10):
            list(store.table("T").scan(fieldlist=["v"]))
        assert store.table("T").plan.kind == "columns"  # now it adapts

    def test_amortization_blocks_rare_workloads(self):
        store = make_store(n=4000, adaptive=True, adapt_interval=4)
        store.adaptivity.min_observations = 1
        store.adaptivity.amortization_queries = 0.001  # nothing amortizes
        table = store.table("T")
        for _ in range(30):
            list(table.scan(fieldlist=["v"]))
        assert store.table("T").plan.kind == "rows"
        assert "not amortized" in store.adaptivity.decisions["T"]["reason"]


class TestPolicyInteraction:
    def test_limited_or_abandoned_scans_do_not_poison_cardinality(self):
        store = make_store(n=1000)
        table = store.table("T")
        for _ in range(3):
            list(table.scan(fieldlist=["v"], limit=1))  # truncated
        it = table.scan(fieldlist=["v"])
        next(it)
        it.close()  # abandoned mid-stream
        monitor = store.catalog.entry("T").monitor
        pattern = next(iter(monitor.patterns.values()))
        assert pattern.avg_rows is None  # nothing recorded yet
        list(table.scan(fieldlist=["v"]))  # one complete unlimited scan
        assert pattern.avg_rows == pytest.approx(1000.0)

    def test_repeated_checks_do_not_reinstall_pending_design(self):
        store = make_store(n=4000)
        store.adaptivity.set_policy("T", "new-data-only")
        table = store.table("T")
        for _ in range(20):
            list(table.scan(fieldlist=["v"]))
        first = store.adapt("T")
        assert first["adapted"] is True
        assert first["applied_immediately"] is False
        # No data moved: a recorded pending design is not an adaptation.
        assert store.adaptivity.adaptations == 0
        for _ in range(3):
            list(store.table("T").scan(fieldlist=["v"]))
            decision = store.adapt("T")
            assert decision["adapted"] is False
            assert decision["reason"] == (
                "recommendation already pending under policy"
            )
        assert store.adaptivity.adaptations == 0  # no fake adaptations

    def test_lazy_policy_defers_until_access_threshold(self):
        store = make_store(n=4000)
        store.adaptivity.set_policy("T", "lazy")
        store.adaptivity.reorganizer.lazy_access_threshold = 3
        store.adaptivity.reorganizer.lazy_overflow_fraction = 10.0
        table = store.table("T")
        for _ in range(20):
            list(table.scan(fieldlist=["v"]))
        decision = store.adapt("T")
        assert decision["adapted"] is True
        assert decision["applied_immediately"] is False
        assert store.table("T").plan.kind == "rows"  # deferred
        report = store.storage_stats()["adaptivity"]
        assert report["tables"]["T"]["pending_design"] == "columns(T)"
        # Live accesses trigger the deferred rewrite at the threshold.
        list(store.table("T").scan(fieldlist=["v"]))
        list(store.table("T").scan(fieldlist=["v"]))
        assert store.table("T").plan.kind == "rows"
        assert store.adaptivity.adaptations == 0  # nothing moved yet
        list(store.table("T").scan(fieldlist=["v"]))
        assert store.table("T").plan.kind == "columns"
        assert store.adaptivity.adaptations == 1  # deferred rewrite fired

    def test_seed_workload_shapes_decisions_before_traffic(self):
        store = make_store(n=4000)
        seed = Workload("T")
        for i in range(5):
            seed.add(Query(f"s{i}", fieldlist=("v",), weight=10.0))
        store.adaptivity.seed_workload(seed)
        # No observed traffic at all: the seed alone drives the advisor.
        decision = store.adapt("T")
        assert decision["adapted"] is True
        assert store.table("T").plan.kind == "columns"

    def test_eager_policy_applies_immediately(self):
        store = make_store(n=4000)
        table = store.table("T")
        for _ in range(20):
            list(table.scan(fieldlist=["v"]))
        decision = store.adapt("T")
        assert decision["adapted"] is True
        assert decision["applied_immediately"] is True
        assert store.table("T").plan.kind == "columns"


# ---------------------------------------------------------------------------
# Post-reorganization staleness: indexes, synopses, pending
# ---------------------------------------------------------------------------


class TestReorganizationStaleness:
    def test_relayout_invalidates_secondary_indexes(self):
        store = make_store(n=1000)
        table = store.table("T")
        table.create_index("t")
        assert store.catalog.entry("T").indexes
        store.relayout("T", "orderby[t](T)")
        assert not store.catalog.entry("T").indexes  # rebuilt on demand
        predicate = Range("t", 10, 20)
        rows = sorted(store.table("T").scan(predicate=predicate))
        assert rows == sorted(
            r for r in make_records(1000) if 10 <= r[0] <= 20
        )

    def test_relayout_rerenders_synopses(self):
        store = make_store(n=1000)
        store.relayout("T", "columns(T)")
        layout = store.catalog.entry("T").layout
        assert layout.synopsis is not None
        assert layout.synopsis.group_zones  # columnar zones, not row pages
        # Pruning stays correct against the new zones.
        predicate = Range("t", 0, 49)
        assert store.table("T").pruned_pages(predicate) > 0
        assert sorted(store.table("T").scan(predicate=predicate)) == sorted(
            r for r in make_records(1000) if r[0] <= 49
        )

    def test_pending_rows_shared_across_handles_and_survive_relayout(self):
        store = make_store(n=100)
        writer = store.table("T")
        writer.insert([(1000 + i, 1, 2, 3) for i in range(5)])
        # A *different* handle sees the pending rows (entry-level buffer).
        reader = store.table("T")
        assert reader.row_count == 105
        store.relayout("T", "columns(T)")
        after = store.table("T")
        assert after.row_count == 105
        assert sum(1 for _ in after.scan()) == 105
        # Pending was folded into the main representation, not duplicated.
        assert after.overflow_row_count == 0

    def test_compact_folds_pending_without_duplication(self):
        store = make_store(n=100)
        table = store.table("T")
        table.insert([(2000, 1, 2, 3)])
        table.flush_inserts()
        table.insert([(2001, 4, 5, 6)])
        assert table.row_count == 102
        table.compact()
        fresh = store.table("T")
        assert fresh.row_count == 102
        assert fresh.overflow_row_count == 0
        assert sum(1 for _ in fresh.scan()) == 102


# ---------------------------------------------------------------------------
# Persistence round trip of monitor state
# ---------------------------------------------------------------------------


class TestMonitorPersistence:
    def test_monitor_and_pending_survive_reopen(self, tmp_path):
        db_path = str(tmp_path / "adaptive.db")
        catalog_path = str(tmp_path / "catalog.json")
        store = RodentStore(path=db_path, page_size=1024, pool_capacity=64)
        store.create_table("T", SCHEMA)
        table = store.load("T", make_records(300))
        for _ in range(10):
            list(table.scan(fieldlist=["v"], predicate=Range("t", 0, 99)))
        table.insert([(5000, 1, 2, 3), (5001, 4, 5, 6)])
        monitor_before = store.catalog.entry("T").monitor
        assert monitor_before is not None and monitor_before.ticks == 10
        store.save_catalog(catalog_path)
        store.close()

        reopened = RodentStore.open(db_path, catalog_path, page_size=1024)
        entry = reopened.catalog.entry("T")
        assert entry.monitor is not None
        assert entry.monitor.ticks == 10
        assert entry.monitor.total_weight() == pytest.approx(
            monitor_before.total_weight()
        )
        assert entry.pending == [(5000, 1, 2, 3), (5001, 4, 5, 6)]
        assert entry.pending_zone is not None
        assert reopened.table("T").row_count == 302
        # The restored workload still drives the advisor.
        decision = reopened.adapt("T")
        assert "recommended" in decision or "reason" in decision
        reopened.close()


# ---------------------------------------------------------------------------
# End to end: the acceptance scenario
# ---------------------------------------------------------------------------


class TestEndToEnd:
    def test_row_store_converges_to_columns_under_projection_workload(self):
        store = make_store(
            n=4000, adaptive=True, adapt_interval=25
        )
        table = store.table("T")
        assert store.table("T").plan.kind == "rows"
        for _ in range(60):
            rows = list(table.scan(fieldlist=["v"]))
            assert len(rows) == 4000
        # The periodic check adopted a columnar design mid-workload...
        assert store.table("T").plan.kind == "columns"
        assert store.adaptivity.adaptations >= 1
        # ...with zero behavioral diff between the batch, reference, and
        # compiled-query paths after the switch.
        fresh = store.table("T")
        predicate = Range("t", 100, 500)
        batch = list(fresh.scan(fieldlist=["t", "v"], predicate=predicate))
        reference = list(
            fresh.scan_reference(fieldlist=["t", "v"], predicate=predicate)
        )
        planned = (
            store.query("T").select("t", "v").where(predicate).run()
        )
        assert batch == reference == planned
        report = store.storage_stats()["adaptivity"]
        assert report["adaptations"] >= 1
        # Post-switch checks keep confirming the new incumbent.
        last = report["tables"]["T"]["last_decision"]
        assert last["adapted"] or last["reason"].startswith(
            ("incumbent", "within hysteresis")
        )

    def test_feedback_records_actual_vs_estimated(self):
        store = make_store(n=1000)
        list(store.query("T").select("v").where(Range("t", 0, 99)).run())
        monitor = store.catalog.entry("T").monitor
        assert monitor is not None
        assert monitor.feedback.samples == 1
        assert monitor.feedback.mean_q_error < 2.0  # histogram is accurate

    def test_adaptivity_report_shape(self):
        store = make_store(n=500)
        list(store.table("T").scan(fieldlist=["v"]))
        report = store.storage_stats()["adaptivity"]
        assert report["enabled"] is False
        assert report["tables"]["T"]["observations"] == 1
        top = report["tables"]["T"]["top_patterns"]
        assert top and top[0]["fieldlist"] == ["v"]
