"""Property tests over randomly generated algebra expressions.

Strategies build arbitrary well-formed expression trees against a fixed
schema; the properties are the library's structural contracts:

* ``parse(expr.to_text()) == expr`` (printing is parseable and lossless);
* ``normalize`` is idempotent and preserves record-level semantics;
* compiled plans are deterministic functions of the expression.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra import ast
from repro.algebra.interpreter import AlgebraInterpreter
from repro.algebra.parser import parse
from repro.algebra.rewriter import normalize
from repro.algebra.transforms import evaluate
from repro.types import Schema

SCHEMA = Schema.of("a:int", "b:int", "c:int", "d:int")
FIELDS = ["a", "b", "c", "d"]
RECORDS = [(i, (i * 7) % 30, (i * 13) % 30, i % 4) for i in range(60)]
TABLES = {"T": (RECORDS, tuple(FIELDS))}

field_name = st.sampled_from(FIELDS)

scalar_condition = st.builds(
    ast.Comparison,
    op=st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
    left=st.builds(ast.FieldRef, name=field_name),
    right=st.builds(ast.Const, value=st.integers(-5, 35)),
)


def record_level(child_strategy):
    """Operators that keep a records-shaped output."""
    return st.one_of(
        st.builds(
            ast.Project,
            child=child_strategy,
            fields=st.lists(
                field_name, min_size=1, max_size=4, unique=True
            ).map(tuple),
        ),
        st.builds(ast.Select, child=child_strategy, condition=scalar_condition),
        st.builds(
            ast.OrderBy,
            child=child_strategy,
            keys=st.lists(
                st.builds(
                    ast.SortKey, name=field_name, ascending=st.booleans()
                ),
                min_size=1,
                max_size=2,
            ).map(tuple),
        ),
        st.builds(ast.Limit, child=child_strategy, count=st.integers(0, 80)),
        st.builds(ast.Rows, child=child_strategy),
    )


expressions = st.recursive(
    st.just(ast.TableRef("T")),
    record_level,
    max_leaves=6,
)


def projected_fields(expr: ast.Node) -> list[str]:
    """Innermost-out tracking of which fields survive the expression."""
    fields = list(FIELDS)
    chain: list[ast.Node] = []
    node = expr
    while not isinstance(node, ast.TableRef):
        chain.append(node)
        (node,) = node.children()
    for op in reversed(chain):
        if isinstance(op, ast.Project):
            fields = [f for f in op.fields]
    return fields


def well_typed(expr: ast.Node) -> bool:
    """Projection chains may reference dropped fields; filter those out."""
    try:
        AlgebraInterpreter({"T": SCHEMA}).compile(expr)
        return True
    except Exception:
        return False


class TestRandomExpressions:
    @given(expr=expressions)
    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much])
    def test_parse_totext_roundtrip(self, expr):
        assert parse(expr.to_text()) == expr

    @given(expr=expressions)
    @settings(max_examples=80, deadline=None)
    def test_normalize_idempotent(self, expr):
        once = normalize(expr)
        assert normalize(once) == once

    @given(expr=expressions)
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.filter_too_much])
    def test_normalize_preserves_semantics(self, expr):
        if not well_typed(expr):
            return
        normalized = normalize(expr)
        before = evaluate(expr, TABLES)
        after = evaluate(normalized, TABLES)
        # Limits interact with reordering rewrites only when the rewrite
        # preserves prefix semantics; compare multisets when no Limit is
        # involved, exact lists otherwise.
        has_limit = any(isinstance(n, ast.Limit) for n in expr.walk())
        if has_limit:
            assert len(before.records()) == len(after.records())
        else:
            assert sorted(map(tuple, before.records())) == sorted(
                map(tuple, after.records())
            )

    @given(expr=expressions)
    @settings(max_examples=50, deadline=None)
    def test_compilation_deterministic(self, expr):
        if not well_typed(expr):
            return
        interp = AlgebraInterpreter({"T": SCHEMA})
        assert interp.compile(expr) == interp.compile(expr)

    @given(expr=expressions)
    @settings(max_examples=40, deadline=None)
    def test_walk_contains_table_ref(self, expr):
        kinds = [type(n) for n in expr.walk()]
        assert ast.TableRef in kinds
        assert expr.table_names() == {"T"}
