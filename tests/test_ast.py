"""Tests for repro.algebra.ast (node construction, traversal, printing)."""

import pytest

from repro.algebra import ast
from repro.errors import AlgebraError


class TestScalars:
    def test_field_ref(self):
        f = ast.FieldRef("lat")
        assert f.to_text() == "r.lat"
        assert f.fields_used() == {"lat"}

    def test_const_rendering(self):
        assert ast.Const(5).to_text() == "5"
        assert ast.Const("x").to_text() == "'x'"
        assert ast.Const(True).to_text() == "True"

    def test_comparison(self):
        c = ast.Comparison("=", ast.FieldRef("a"), ast.Const(617))
        assert c.to_text() == "r.a = 617"
        assert c.fields_used() == {"a"}

    def test_bad_comparison_op(self):
        with pytest.raises(AlgebraError):
            ast.Comparison("~", ast.Const(1), ast.Const(2))

    def test_arith(self):
        a = ast.Arith("+", ast.FieldRef("x"), ast.Const(1))
        assert a.to_text() == "(r.x + 1)"
        with pytest.raises(AlgebraError):
            ast.Arith("**", ast.Const(1), ast.Const(2))

    def test_logical(self):
        cmp1 = ast.Comparison(">", ast.FieldRef("a"), ast.Const(1))
        cmp2 = ast.Comparison("<", ast.FieldRef("b"), ast.Const(9))
        both = ast.Logical("and", (cmp1, cmp2))
        assert both.fields_used() == {"a", "b"}
        assert "and" in both.to_text()

    def test_logical_arity_checks(self):
        c = ast.Comparison("=", ast.FieldRef("a"), ast.Const(1))
        with pytest.raises(AlgebraError):
            ast.Logical("not", (c, c))
        with pytest.raises(AlgebraError):
            ast.Logical("and", (c,))
        with pytest.raises(AlgebraError):
            ast.Logical("xor", (c, c))

    def test_conj_single(self):
        c = ast.Comparison("=", ast.FieldRef("a"), ast.Const(1))
        assert ast.conj(c) is c
        assert isinstance(ast.conj(c, c), ast.Logical)


class TestNodeConstruction:
    def test_table_ref(self):
        t = ast.table("Traces")
        assert t.to_text() == "Traces"
        assert t.children() == ()
        assert t.table_names() == {"Traces"}

    def test_literal_freeze_thaw(self):
        lit = ast.Literal.of([[1, 2], [3, 4]])
        assert lit.nesting == ((1, 2), (3, 4))
        assert lit.thaw() == [[1, 2], [3, 4]]
        assert lit.to_text() == "[[1, 2], [3, 4]]"

    def test_project_requires_fields(self):
        with pytest.raises(AlgebraError):
            ast.project([], ast.table("T"))

    def test_fold_disjoint_fields(self):
        with pytest.raises(AlgebraError):
            ast.fold(["a"], ["a"], ast.table("T"))

    def test_grid_validation(self):
        with pytest.raises(AlgebraError):
            ast.Grid(ast.table("T"), ("a",), (1.0, 2.0))
        with pytest.raises(AlgebraError):
            ast.Grid(ast.table("T"), ("a",), (-1.0,))
        with pytest.raises(AlgebraError):
            ast.Grid(ast.table("T"), (), ())

    def test_chunk_validation(self):
        with pytest.raises(AlgebraError):
            ast.chunk([0], ast.table("T"))

    def test_limit_validation(self):
        with pytest.raises(AlgebraError):
            ast.limit(-1, ast.table("T"))

    def test_orderby_requires_keys(self):
        with pytest.raises(AlgebraError):
            ast.OrderBy(ast.table("T"), ())

    def test_builders_compose(self):
        expr = ast.zorder(
            ast.grid(["y", "z"], [1, 10], ast.table("N"))
        )
        assert expr.to_text() == "zorder(grid[y, z],[1.0, 10.0](N))"

    def test_partition_accepts_field_name(self):
        p = ast.partition("id", ast.table("T"))
        assert isinstance(p.key, ast.FieldRef)

    def test_orderby_accepts_strings(self):
        o = ast.orderby(["t", ast.SortKey("id", ascending=False)], ast.table("T"))
        assert o.keys[0] == ast.SortKey("t", True)
        assert o.keys[1].ascending is False


class TestTraversal:
    def expr(self):
        return ast.zorder(
            ast.grid(
                ["lat", "lon"],
                [10, 10],
                ast.project(["lat", "lon"], ast.table("T")),
            )
        )

    def test_walk_preorder(self):
        names = [type(n).__name__ for n in self.expr().walk()]
        assert names == ["ZOrder", "Grid", "Project", "TableRef"]

    def test_children_and_with_children(self):
        expr = self.expr()
        (child,) = expr.children()
        rebuilt = expr.with_children([child])
        assert rebuilt == expr

    def test_with_children_arity_checked(self):
        with pytest.raises(AlgebraError):
            ast.table("T").with_children([ast.table("X")])

    def test_transform_bottom_up_identity(self):
        expr = self.expr()
        assert expr.transform_bottom_up(lambda n: n) == expr

    def test_transform_bottom_up_rewrites(self):
        expr = self.expr()

        def rename(node):
            if isinstance(node, ast.TableRef):
                return ast.TableRef("U")
            return node

        rewritten = expr.transform_bottom_up(rename)
        assert rewritten.table_names() == {"U"}
        assert expr.table_names() == {"T"}  # immutability

    def test_equality_and_hash(self):
        assert self.expr() == self.expr()
        assert hash(self.expr()) == hash(self.expr())
        assert self.expr() != ast.table("T")

    def test_mirror_children(self):
        m = ast.mirror(ast.rows(ast.table("T")), ast.columns(ast.table("T")))
        left, right = m.children()
        rebuilt = m.with_children([left, right])
        assert rebuilt == m

    def test_prejoin_tables(self):
        p = ast.prejoin("k", ast.table("A"), ast.table("B"))
        assert p.table_names() == {"A", "B"}


class TestToText:
    CASES = [
        (lambda: ast.project(["a", "b"], ast.table("T")), "project[a, b](T)"),
        (lambda: ast.unfold(ast.fold(["b"], ["a"], ast.table("T"))),
         "unfold(fold[b; a](T))"),
        (lambda: ast.delta(ast.table("T"), ["lat"]), "delta[lat](T)"),
        (lambda: ast.delta(ast.table("T")), "delta(T)"),
        (lambda: ast.transpose(ast.table("T")), "transpose(T)"),
        (lambda: ast.limit(5, ast.table("T")), "limit[5](T)"),
        (lambda: ast.groupby(["id"], ast.table("T")), "groupby[id](T)"),
        (lambda: ast.compress("rle", ast.table("T"), ["a"]),
         "compress[rle; a](T)"),
        (lambda: ast.columns(ast.table("T"), [["a", "b"], ["c"]]),
         "columns[[a, b], [c]](T)"),
        (lambda: ast.hilbert(ast.grid(["x", "y"], [1, 1], ast.table("T"))),
         "hilbert(grid[x, y],[1.0, 1.0](T))"),
    ]

    @pytest.mark.parametrize("builder,expected", CASES)
    def test_rendering(self, builder, expected):
        assert builder().to_text() == expected

    def test_select_rendering(self):
        s = ast.select(
            ast.Comparison("=", ast.FieldRef("area"), ast.Const(617)),
            ast.table("T"),
        )
        assert s.to_text() == "select[r.area = 617](T)"

    def test_append_rendering(self):
        a = ast.append(
            {"double_x": ast.Arith("*", ast.FieldRef("x"), ast.Const(2))},
            ast.table("T"),
        )
        assert a.to_text() == "append[double_x=(r.x * 2)](T)"
