"""Batch pipeline equivalence: ``scan`` (batch-at-a-time) == the reference.

The batch scan pipeline (PR: columnar batches, compiled predicates, bulk
codec decode) must be invisible to callers: for every layout kind ×
projection × predicate × order combination, :meth:`Table.scan` and the
tuple-at-a-time :meth:`Table.scan_reference` return byte-identical tuples in
identical order — including overflow/pending merging and limit pushdown.

Also here: round-trip properties for every codec's bulk ``decode_all``.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compression import get_codec
from repro.engine.database import RodentStore
from repro.errors import QueryError
from repro.query.executor import Aggregate, QuerySpec, execute
from repro.query.expressions import And, Not, Or, Range, Rect, from_scalar
from repro.types import Schema
from repro.types.types import FLOAT, INT, STRING

SCHEMA = Schema.of("t:int", "x:int", "y:int", "g:int")

#: Every layout kind the renderer supports: rows, columns (pure + grouped),
#: mirror, grid, folded, array — plus delta/codec-compressed variants.
LAYOUTS = {
    "rows": "T",
    "rows_sorted": "orderby[t](T)",
    "rows_delta": "delta[t](orderby[t](T))",
    "columns": "columns(T)",
    "grouped": "columns[[t, g], [x, y]](T)",
    "columns_lz": "compress[lz](columns(T))",
    "mirror": "mirror(rows(T), columns(T))",
    "grid": "grid[x, y],[25, 25](T)",
    "grid_zorder_delta": (
        "compress[varint; x, y](delta[x, y](zorder(grid[x, y],[25, 25](T))))"
    ),
    "folded": "fold[t, x, y; g](T)",
    "array": "transpose(project[x, y](T))",
}


def make_records(n=220):
    return [
        (i, (i * 7) % 53 - 26, (i * i) % 41, i % 5)
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def tables():
    out = {}
    for name, layout in LAYOUTS.items():
        store = RodentStore(page_size=1024, pool_capacity=64)
        store.create_table("T", SCHEMA, layout=layout)
        out[name] = (store, store.load("T", make_records()))
    return out


def field_cases(table):
    """(fieldlist, predicate, order) combinations valid for this table."""
    names = set(table.scan_schema().names())
    projections = [None]
    predicates = [None]
    orders = [None]
    if {"t", "x", "y", "g"} <= names:
        projections += [["x"], ["y", "t"], ["g", "x", "y", "t"], ["t", "t"]]
        predicates += [
            Range("x", 0, 10),
            Range("t", hi=100),
            Rect({"x": (-5, 15), "y": (3, 30)}),
            And(Range("t", 20, 200), Not(Range("g", 2, 2))),
            Or(Range("x", -30, -10), Range("x", 10, 30)),
        ]
        orders += [["t"], [("x", False), ("t", True)], ["g", "y"]]
    elif names == {"value"}:
        projections += [["value"]]
        predicates += [Range("value", 5, 25)]
        orders += [[("value", False)]]
    return projections, predicates, orders


@pytest.mark.parametrize("layout", sorted(LAYOUTS))
def test_batch_equals_reference(tables, layout):
    _, table = tables[layout]
    projections, predicates, orders = field_cases(table)
    checked = 0
    for fieldlist in projections:
        for predicate in predicates:
            for order in orders:
                got = list(
                    table.scan(fieldlist, predicate=predicate, order=order)
                )
                ref = list(
                    table.scan_reference(
                        fieldlist, predicate=predicate, order=order
                    )
                )
                assert got == ref, (layout, fieldlist, predicate, order)
                checked += 1
    assert checked >= 4


@pytest.mark.parametrize("layout", sorted(LAYOUTS))
def test_limit_pushdown_equals_reference_prefix(tables, layout):
    _, table = tables[layout]
    projections, predicates, orders = field_cases(table)
    predicate = predicates[-1]
    order = orders[-1]
    for limit in (0, 1, 7, 10_000):
        got = list(table.scan(predicate=predicate, order=order, limit=limit))
        ref = list(table.scan_reference(predicate=predicate, order=order))
        assert got == ref[:limit], (layout, limit)


@pytest.mark.parametrize("layout", ["rows", "columns", "grid", "folded"])
def test_batch_equals_reference_with_overflow(layout):
    store = RodentStore(page_size=1024, pool_capacity=64)
    store.create_table("T", SCHEMA, layout=LAYOUTS[layout])
    table = store.load("T", make_records(150))
    table.insert([(1000 + i, i - 3, i, i % 5) for i in range(40)])
    table.flush_inserts()  # an on-disk overflow region ...
    table.insert([(2000 + i, -i, 2 * i, i % 5) for i in range(17)])  # + pending
    for fieldlist in (None, ["x", "t"]):
        for predicate in (None, Range("x", -10, 20)):
            for order in (None, ["t"]):
                got = list(table.scan(fieldlist, predicate, order))
                ref = list(table.scan_reference(fieldlist, predicate, order))
                assert got == ref, (layout, fieldlist, predicate, order)


def test_scan_batches_flattens_to_scan(tables):
    _, table = tables["columns"]
    flattened = [
        row
        for batch in table.scan_batches(["x", "t"], Range("x", 0, 10))
        for row in batch
    ]
    assert flattened == list(table.scan(["x", "t"], Range("x", 0, 10)))


def test_scan_validates_eagerly(tables):
    """Bad fieldlist/predicate/order raise at scan() call time, not on
    first next() — same contract as the reference pipeline."""
    _, table = tables["rows"]
    with pytest.raises(QueryError):
        table.scan(fieldlist=["nope"])
    with pytest.raises(QueryError):
        table.scan(predicate=Range("nope", 0, 1))
    with pytest.raises(QueryError):
        table.scan(order=["nope"])


def test_index_probe_path_equals_reference():
    store = RodentStore(page_size=1024, pool_capacity=64)
    store.create_table("T", SCHEMA)
    table = store.load("T", make_records(300))
    table.create_index("t")
    predicate = Range("t", 10, 20)
    got = list(table.scan(predicate=predicate))
    ref = list(table.scan_reference(predicate=predicate))
    assert got == ref
    assert len(got) == 11


def test_scalar_predicate_compiles_and_matches(tables):
    from repro.algebra.parser import parse_condition

    _, table = tables["rows"]
    condition = parse_condition("r.x >= 0 and (r.g = 2 or r.y < 10)")
    predicate = from_scalar(condition)
    got = list(table.scan(predicate=predicate))
    ref = list(table.scan_reference(predicate=predicate))
    assert got == ref
    assert got  # the condition selects something


def test_grouped_aggregation_over_batches(tables):
    _, table = tables["columns"]
    spec = QuerySpec(
        table="T",
        group_by=("g",),
        aggregates=(
            Aggregate("count"),
            Aggregate("sum", "x"),
            Aggregate("min", "y"),
            Aggregate("max", "y"),
            Aggregate("avg", "t"),
        ),
        predicate=Range("t", 10, 190),
        order=(("g", True),),
    )
    got = execute(table, spec)

    rows = list(table.scan_reference(["g", "x", "y", "t"], spec.predicate))
    expected = {}
    for g, x, y, t in rows:
        s = expected.setdefault(g, [0, 0, None, None, 0])
        s[0] += 1
        s[1] += x
        s[2] = y if s[2] is None else min(s[2], y)
        s[3] = y if s[3] is None else max(s[3], y)
        s[4] += t
    want = [
        (g, s[0], s[1], s[2], s[3], s[4] / s[0])
        for g, s in sorted(expected.items())
    ]
    assert got == want


def test_aggregation_empty_table_has_no_groups():
    store = RodentStore(page_size=1024, pool_capacity=8)
    store.create_table("T", SCHEMA)
    table = store.load("T", [(0, 0, 0, 0)])
    spec = QuerySpec(
        table="T", aggregates=(Aggregate("count"),),
        predicate=Range("t", 5, 9),
    )
    assert execute(table, spec) == []


# ---------------------------------------------------------------------------
# codec decode_all round-trips
# ---------------------------------------------------------------------------

ints = st.lists(st.integers(-(2**40), 2**40), max_size=200)
small_ints = st.lists(st.integers(-100, 100), max_size=200)
non_negative = st.lists(st.integers(0, 2**33), max_size=200)
floats = st.lists(
    st.floats(allow_nan=False, allow_infinity=False, width=64), max_size=200
)
strings = st.lists(st.text(max_size=12), max_size=120)

CODEC_CASES = [
    ("none", ints, INT),
    ("none", floats, FLOAT),
    ("none", strings, STRING),
    ("varint", ints, INT),
    ("delta", ints, INT),
    ("delta", floats, FLOAT),
    ("rle", small_ints, INT),
    ("rle", strings, STRING),
    ("dict", small_ints, INT),
    ("dict", strings, STRING),
    ("bitpack", non_negative, INT),
    ("for", ints, INT),
    ("lz", ints, INT),
    ("lz", strings, STRING),
    ("xor", floats, FLOAT),
]


@pytest.mark.parametrize(
    "codec_name,strategy,dtype",
    CODEC_CASES,
    ids=[f"{c}-{d.name}" for c, _, d in CODEC_CASES],
)
@given(data=st.data())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_decode_all_round_trip(codec_name, strategy, dtype, data):
    values = data.draw(strategy)
    codec = get_codec(codec_name)
    encoded = codec.encode(values, dtype)
    assert codec.decode_all(encoded, dtype) == list(values)
    assert codec.decode_all(encoded, dtype) == codec.decode(encoded, dtype)
