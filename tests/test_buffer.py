"""Tests for repro.storage.buffer (buffer pool, eviction policies,
thread-safety under concurrent scans)."""

import random
import threading

import pytest

from repro.errors import BufferPoolError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


def make_pool(capacity=4, policy="lru"):
    disk = DiskManager(page_size=256)
    return BufferPool(disk, capacity=capacity, policy=policy), disk


class TestBasics:
    def test_fetch_reads_once(self):
        pool, disk = make_pool()
        a = disk.allocate_page()
        pool.fetch(a)
        pool.unpin(a)
        pool.fetch(a)
        pool.unpin(a)
        assert disk.stats.page_reads == 1
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1

    def test_new_page_is_dirty_and_pinned(self):
        pool, disk = make_pool()
        frame = pool.new_page()
        assert frame.dirty
        assert frame.pin_count == 1
        assert pool.contains(frame.page_id)

    def test_unpin_unknown_page(self):
        pool, _ = make_pool()
        with pytest.raises(BufferPoolError):
            pool.unpin(99)

    def test_unpin_not_pinned(self):
        pool, disk = make_pool()
        a = disk.allocate_page()
        pool.fetch(a)
        pool.unpin(a)
        with pytest.raises(BufferPoolError):
            pool.unpin(a)

    def test_dirty_flag_sticks(self):
        pool, disk = make_pool()
        a = disk.allocate_page()
        frame = pool.fetch(a)
        frame.data[0] = 0xAB
        pool.unpin(a, dirty=True)
        pool.flush(a)
        assert disk.read_page(a)[0] == 0xAB

    def test_flush_all(self):
        pool, disk = make_pool()
        frames = [pool.new_page() for _ in range(3)]
        for f in frames:
            f.data[0] = 1
            pool.unpin(f.page_id, dirty=True)
        pool.flush_all()
        for f in frames:
            assert disk.read_page(f.page_id)[0] == 1

    def test_invalid_config(self):
        disk = DiskManager(page_size=256)
        with pytest.raises(BufferPoolError):
            BufferPool(disk, capacity=0)
        with pytest.raises(BufferPoolError):
            BufferPool(disk, policy="mru")


class TestEviction:
    def test_lru_evicts_oldest_unpinned(self):
        pool, disk = make_pool(capacity=2)
        a, b, c = (disk.allocate_page() for _ in range(3))
        pool.fetch(a); pool.unpin(a)
        pool.fetch(b); pool.unpin(b)
        pool.fetch(c); pool.unpin(c)  # evicts a
        assert not pool.contains(a)
        assert pool.contains(b) and pool.contains(c)
        assert pool.stats.evictions == 1

    def test_lru_refresh_on_fetch(self):
        pool, disk = make_pool(capacity=2)
        a, b, c = (disk.allocate_page() for _ in range(3))
        pool.fetch(a); pool.unpin(a)
        pool.fetch(b); pool.unpin(b)
        pool.fetch(a); pool.unpin(a)  # refresh a; b is now oldest
        pool.fetch(c); pool.unpin(c)
        assert pool.contains(a)
        assert not pool.contains(b)

    def test_pinned_pages_survive(self):
        pool, disk = make_pool(capacity=2)
        a, b, c = (disk.allocate_page() for _ in range(3))
        pool.fetch(a)  # stays pinned
        pool.fetch(b); pool.unpin(b)
        pool.fetch(c); pool.unpin(c)  # must evict b, not a
        assert pool.contains(a)
        assert not pool.contains(b)

    def test_all_pinned_raises(self):
        pool, disk = make_pool(capacity=2)
        a, b, c = (disk.allocate_page() for _ in range(3))
        pool.fetch(a)
        pool.fetch(b)
        with pytest.raises(BufferPoolError):
            pool.fetch(c)

    def test_eviction_flushes_dirty(self):
        pool, disk = make_pool(capacity=1)
        a, b = disk.allocate_page(), disk.allocate_page()
        frame = pool.fetch(a)
        frame.data[0] = 0x77
        pool.unpin(a, dirty=True)
        pool.fetch(b)
        pool.unpin(b)
        assert disk.read_page(a)[0] == 0x77

    def test_clock_basic_eviction(self):
        pool, disk = make_pool(capacity=2, policy="clock")
        a, b, c = (disk.allocate_page() for _ in range(3))
        pool.fetch(a); pool.unpin(a)
        pool.fetch(b); pool.unpin(b)
        pool.fetch(c); pool.unpin(c)
        assert len(pool) == 2
        assert pool.contains(c)

    def test_clock_respects_pins(self):
        pool, disk = make_pool(capacity=2, policy="clock")
        a, b, c = (disk.allocate_page() for _ in range(3))
        pool.fetch(a)
        pool.fetch(b); pool.unpin(b)
        pool.fetch(c); pool.unpin(c)
        assert pool.contains(a)


class TestClear:
    def test_clear_flushes_and_drops(self):
        pool, disk = make_pool()
        frame = pool.new_page()
        frame.data[0] = 5
        pool.unpin(frame.page_id, dirty=True)
        pool.clear()
        assert len(pool) == 0
        assert disk.read_page(frame.page_id)[0] == 5

    def test_clear_refuses_pinned(self):
        pool, disk = make_pool()
        pool.new_page()  # pinned
        with pytest.raises(BufferPoolError):
            pool.clear()

    def test_hit_rate(self):
        pool, disk = make_pool()
        a = disk.allocate_page()
        pool.fetch(a); pool.unpin(a)
        pool.fetch(a); pool.unpin(a)
        assert pool.stats.hit_rate == 0.5


class TestConcurrency:
    """The fetch/unpin/evict/flush paths race under parallel partition
    scans; this stress suite hammers them from many threads."""

    def test_concurrent_fetch_unpin_stress(self):
        pool, disk = make_pool(capacity=8)
        pages = [disk.allocate_page() for _ in range(64)]
        for page_id in pages:
            data = bytearray(256)
            data[0] = page_id % 251
            disk.write_page(page_id, data)
        errors: list[BaseException] = []
        iterations = 400

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            try:
                for _ in range(iterations):
                    page_id = rng.choice(pages)
                    frame = pool.fetch(page_id)
                    # Pinned frames are never evicted, so the data must
                    # stay readable (and correct) until unpin.
                    assert frame.data[0] == page_id % 251
                    pool.unpin(page_id)
            except BaseException as exc:  # propagated to the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        # Bookkeeping stayed consistent: every fetch was a hit or a miss
        # (racing double-misses may read the disk twice but only count
        # once each), nothing remains pinned, capacity was respected.
        assert pool.stats.hits + pool.stats.misses == 6 * iterations
        assert pool.pinned_pages() == []
        assert len(pool) <= pool.capacity

    def test_concurrent_miss_same_page(self):
        pool, disk = make_pool(capacity=4)
        page_id = disk.allocate_page()
        data = bytearray(256)
        data[0] = 0x42
        disk.write_page(page_id, data)
        barrier = threading.Barrier(4)
        errors: list[BaseException] = []

        def worker() -> None:
            try:
                barrier.wait()
                for _ in range(50):
                    frame = pool.fetch(page_id)
                    assert frame.data[0] == 0x42
                    pool.unpin(page_id)
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        assert pool.pinned_pages() == []
        # Exactly one frame for the page, however the misses raced.
        assert pool.contains(page_id) and len(pool) == 1

    def test_concurrent_flush_with_readers(self):
        pool, disk = make_pool(capacity=16)
        pages = [disk.allocate_page() for _ in range(8)]
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader() -> None:
            rng = random.Random(99)
            try:
                while not stop.is_set():
                    page_id = rng.choice(pages)
                    pool.fetch(page_id)
                    pool.unpin(page_id, dirty=True)
            except BaseException as exc:
                errors.append(exc)

        def flusher() -> None:
            try:
                for _ in range(200):
                    pool.flush_all()
            except BaseException as exc:
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        flush_thread = threading.Thread(target=flusher)
        for t in readers:
            t.start()
        flush_thread.start()
        flush_thread.join()
        stop.set()
        for t in readers:
            t.join()
        assert not errors, errors
        assert pool.pinned_pages() == []
