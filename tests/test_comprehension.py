"""Tests for repro.algebra.comprehension — the paper's §3.3 semantics."""

import pytest

from repro.algebra.comprehension import (
    Comprehension,
    Generator,
    GroupByClause,
    LimitClause,
    OrderByClause,
    PartitionByClause,
    comprehend,
    count,
    pos,
)
from repro.errors import AlgebraError

# The paper's example table T = [[Zip, Area, Addr]].
T = [
    (2139, 617, "32 Vassar St"),
    (2142, 617, "1 Broadway"),
    (10001, 212, "350 5th Ave"),
    (2139, 617, "77 Mass Ave"),
]


class TestGenerators:
    def test_single_generator(self):
        out = comprehend(
            head=lambda env: env["r"][0],
            generators=[("r", T)],
        )
        assert out == [2139, 2142, 10001, 2139]

    def test_row_major_identity(self):
        """The paper's N_r = [[r.Zip, r.Area, r.Addr] | \\r <- T]."""
        out = comprehend(
            head=lambda env: [env["r"][0], env["r"][1], env["r"][2]],
            generators=[("r", T)],
        )
        assert out == [list(r) for r in T]

    def test_column_major(self):
        """The paper's N_c: one comprehension per column."""
        zips = comprehend(lambda e: e["r"][0], [("r", T)])
        areas = comprehend(lambda e: e["r"][1], [("r", T)])
        assert [zips, areas] == [
            [2139, 2142, 10001, 2139],
            [617, 617, 212, 617],
        ]

    def test_multiple_generators_cross_product(self):
        out = comprehend(
            head=lambda env: (env["a"], env["b"]),
            generators=[("a", [1, 2]), ("b", [10, 20])],
        )
        assert out == [(1, 10), (1, 20), (2, 10), (2, 20)]

    def test_dependent_generator(self):
        """\\r' <- r : inner generator depends on the outer binding."""
        nested = [[1, 2], [3]]
        out = comprehend(
            head=lambda env: env["x"],
            generators=[("row", nested), ("x", lambda env: env["row"])],
        )
        assert out == [1, 2, 3]

    def test_generator_source_must_be_nesting(self):
        with pytest.raises(AlgebraError):
            comprehend(lambda e: e["r"], [("r", 42)])

    def test_empty_var_rejected(self):
        with pytest.raises(AlgebraError):
            Generator("", [1])

    def test_no_generators_rejected(self):
        with pytest.raises(AlgebraError):
            Comprehension(head=lambda e: 1, generators=[])


class TestConditions:
    def test_paper_nz_example(self):
        """N_z = [r.Zip | \\r <- T, r.Area = 617, orderby r.Zip ASC]."""
        out = comprehend(
            head=lambda env: env["r"][0],
            generators=[("r", T)],
            conditions=[lambda env: env["r"][1] == 617],
            clauses=[OrderByClause(lambda env: env["r"][0])],
        )
        assert out == [2139, 2139, 2142]

    def test_multiple_conditions_conjoin(self):
        out = comprehend(
            head=lambda env: env["r"][0],
            generators=[("r", T)],
            conditions=[
                lambda env: env["r"][1] == 617,
                lambda env: env["r"][0] > 2139,
            ],
        )
        assert out == [2142]


class TestClauses:
    def test_orderby_desc(self):
        out = comprehend(
            head=lambda env: env["r"][0],
            generators=[("r", T)],
            clauses=[OrderByClause(lambda env: env["r"][0], ascending=False)],
        )
        assert out == [10001, 2142, 2139, 2139]

    def test_limit(self):
        out = comprehend(
            head=lambda env: env["r"][0],
            generators=[("r", T)],
            clauses=[LimitClause(2)],
        )
        assert out == [2139, 2142]

    def test_limit_negative_rejected(self):
        with pytest.raises(AlgebraError):
            LimitClause(-1)

    def test_paper_delta_limit_idiom(self):
        """∆(N) uses 'limit count(N) - 1' to drop the shifted tail."""
        values = [3, 5, 6]
        shifted = comprehend(
            head=lambda env: env["n"],
            generators=[("n", values)],
            clauses=[LimitClause(count(values) - 1)],
        )
        assert shifted == [3, 5]

    def test_groupby_first_occurrence_order(self):
        out = comprehend(
            head=lambda env: env["r"][0],
            generators=[("r", T)],
            clauses=[GroupByClause(lambda env: env["r"][1])],
        )
        assert out == [[2139, 2142, 2139], [10001]]

    def test_partitionby_with_stride(self):
        values = [(0,), (7,), (12,), (25,), (13,)]
        out = comprehend(
            head=lambda env: env["v"][0],
            generators=[("v", values)],
            clauses=[PartitionByClause(lambda env: env["v"][0], stride=10)],
        )
        assert out == [[0, 7], [12, 13], [25]]

    def test_partitionby_without_stride(self):
        out = comprehend(
            head=lambda env: env["r"][2],
            generators=[("r", T)],
            clauses=[PartitionByClause(lambda env: env["r"][1])],
        )
        assert out == [
            ["32 Vassar St", "1 Broadway", "77 Mass Ave"],
            ["350 5th Ave"],
        ]

    def test_partitionby_stride_positive(self):
        with pytest.raises(AlgebraError):
            PartitionByClause(lambda env: 0, stride=0)

    def test_clause_pipeline_order(self):
        # orderby then limit != limit then orderby
        ordered_first = comprehend(
            head=lambda env: env["r"][0],
            generators=[("r", T)],
            clauses=[OrderByClause(lambda env: env["r"][0]), LimitClause(2)],
        )
        assert ordered_first == [2139, 2139]
        limit_first = comprehend(
            head=lambda env: env["r"][0],
            generators=[("r", T)],
            clauses=[LimitClause(2), OrderByClause(lambda env: env["r"][0])],
        )
        assert limit_first == [2139, 2142]


class TestHelpers:
    def test_pos(self):
        out = comprehend(
            head=lambda env: pos(env, "r"),
            generators=[("r", T)],
        )
        assert out == [0, 1, 2, 3]

    def test_pos_unbound(self):
        with pytest.raises(AlgebraError):
            pos({}, "r")

    def test_count(self):
        assert count([1, 2, 3]) == 3
        assert count([]) == 0
        with pytest.raises(AlgebraError):
            count(5)

    def test_pos_in_condition(self):
        out = comprehend(
            head=lambda env: env["r"][0],
            generators=[("r", T)],
            conditions=[lambda env: pos(env, "r") % 2 == 0],
        )
        assert out == [2139, 10001]

    def test_environment_isolation(self):
        comp = Comprehension(
            head=lambda env: env["r"],
            generators=[Generator("r", [1, 2])],
        )
        env = {"outer": 9}
        comp.evaluate(env)
        assert env == {"outer": 9}  # caller's env untouched
