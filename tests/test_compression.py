"""Tests for repro.compression (all codecs)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression import (
    CodecError,
    codec_names,
    get_codec,
    pack_uints,
    register,
    unpack_uints,
    varint_decode,
    varint_encode,
    zigzag_decode,
    zigzag_encode,
)
from repro.compression.base import Codec
from repro.types import FLOAT, INT, STRING

ints = st.lists(st.integers(-(2**62), 2**62), max_size=200)
small_ints = st.lists(st.integers(-1000, 1000), max_size=200)
floats = st.lists(
    st.floats(allow_nan=False, allow_infinity=False, width=64), max_size=100
)


class TestRegistry:
    def test_builtins_registered(self):
        assert {"none", "varint", "delta", "rle", "dict", "bitpack",
                "for", "lz", "xor"} <= codec_names()

    def test_unknown_codec(self):
        with pytest.raises(CodecError):
            get_codec("snappy")

    def test_user_defined_codec(self):
        class Reverse(Codec):
            name = "reverse-test"

            def encode(self, values, dtype):
                import struct
                return struct.pack(f"<{len(values)}q", *reversed(values))

            def decode(self, data, dtype):
                import struct
                n = len(data) // 8
                return list(reversed(struct.unpack(f"<{n}q", data)))

        register(Reverse())
        codec = get_codec("reverse-test")
        assert codec.decode(codec.encode([1, 2, 3], INT), INT) == [1, 2, 3]


class TestZigzagVarint:
    def test_zigzag_small_magnitudes(self):
        assert zigzag_encode(0) == 0
        assert zigzag_encode(-1) == 1
        assert zigzag_encode(1) == 2
        assert zigzag_encode(-2) == 3

    @given(st.integers(-(2**62), 2**62))
    def test_zigzag_roundtrip(self, v):
        assert zigzag_decode(zigzag_encode(v)) == v

    @given(st.integers(0, 2**63))
    def test_varint_roundtrip(self, v):
        buf = bytearray()
        varint_encode(v, buf)
        out, offset = varint_decode(bytes(buf), 0)
        assert out == v and offset == len(buf)

    def test_varint_rejects_negative(self):
        with pytest.raises(CodecError):
            varint_encode(-1, bytearray())

    def test_varint_truncated(self):
        with pytest.raises(CodecError):
            varint_decode(b"\x80", 0)

    def test_small_values_one_byte(self):
        buf = bytearray()
        varint_encode(100, buf)
        assert len(buf) == 1


class TestBitpack:
    @given(st.lists(st.integers(0, 2**40), max_size=200))
    def test_roundtrip(self, values):
        assert unpack_uints(pack_uints(values)) == values

    def test_negative_rejected(self):
        with pytest.raises(CodecError):
            pack_uints([-1])

    def test_minimal_width(self):
        # 100 values < 8 -> 3 bits each -> ~38 bytes + header
        data = pack_uints([7] * 100)
        assert len(data) <= 5 + (100 * 3 + 7) // 8

    def test_truncated(self):
        with pytest.raises(CodecError):
            unpack_uints(b"\x01")


@pytest.mark.parametrize("name", ["none", "varint", "delta", "bitpack", "for"])
class TestIntCodecs:
    @given(values=st.lists(st.integers(0, 10**6), max_size=120))
    def test_roundtrip(self, name, values):
        codec = get_codec(name)
        assert codec.decode(codec.encode(values, INT), INT) == values

    def test_empty(self, name):
        codec = get_codec(name)
        assert codec.decode(codec.encode([], INT), INT) == []


class TestSignedIntCodecs:
    @pytest.mark.parametrize("name", ["none", "varint", "delta", "for"])
    @given(values=small_ints)
    def test_negative_values(self, name, values):
        codec = get_codec(name)
        assert codec.decode(codec.encode(values, INT), INT) == values


class TestDeltaCodec:
    @given(floats)
    def test_float_roundtrip_exact(self, values):
        codec = get_codec("delta")
        assert codec.decode(codec.encode(values, FLOAT), FLOAT) == values

    def test_sorted_ints_compress(self):
        codec = get_codec("delta")
        values = list(range(100_000, 101_000))
        assert len(codec.encode(values, INT)) < 1000 * 2.5

    def test_type_mismatch_tag(self):
        codec = get_codec("delta")
        data = codec.encode([1, 2, 3], INT)
        with pytest.raises(CodecError):
            codec.decode(data, FLOAT)

    def test_rejects_strings(self):
        with pytest.raises(CodecError):
            get_codec("delta").encode(["a"], STRING)


class TestRle:
    @given(st.lists(st.integers(0, 3), max_size=300))
    def test_roundtrip_ints(self, values):
        codec = get_codec("rle")
        assert codec.decode(codec.encode(values, INT), INT) == values

    @given(st.lists(st.sampled_from(["a", "b", "c"]), max_size=100))
    def test_roundtrip_strings(self, values):
        codec = get_codec("rle")
        assert codec.decode(codec.encode(values, STRING), STRING) == values

    def test_long_runs_compress(self):
        codec = get_codec("rle")
        values = [5] * 10_000
        assert len(codec.encode(values, INT)) < 100


class TestDictionary:
    @given(st.lists(st.sampled_from([10, 20, 30, 40]), max_size=300))
    def test_roundtrip(self, values):
        codec = get_codec("dict")
        assert codec.decode(codec.encode(values, INT), INT) == values

    @given(st.lists(st.text(min_size=0, max_size=8), max_size=80))
    def test_roundtrip_strings(self, values):
        codec = get_codec("dict")
        assert codec.decode(codec.encode(values, STRING), STRING) == values

    def test_low_cardinality_compresses(self):
        codec = get_codec("dict")
        values = ["boston", "nyc"] * 5_000
        plain = get_codec("none").encode(values, STRING)
        assert len(codec.encode(values, STRING)) < len(plain) / 10


class TestLz:
    @given(st.lists(st.integers(0, 100), max_size=200))
    def test_roundtrip(self, values):
        codec = get_codec("lz")
        assert codec.decode(codec.encode(values, INT), INT) == values

    def test_repetitive_compresses(self):
        codec = get_codec("lz")
        values = [1, 2, 3, 4] * 1000
        plain = get_codec("none").encode(values, INT)
        assert len(codec.encode(values, INT)) < len(plain) / 20


class TestXor:
    @given(floats)
    def test_roundtrip_exact(self, values):
        codec = get_codec("xor")
        assert codec.decode(codec.encode(values, FLOAT), FLOAT) == values

    def test_smooth_series_compress(self):
        codec = get_codec("xor")
        values = [42.0 + i * 1e-4 for i in range(1000)]
        plain = get_codec("none").encode(values, FLOAT)
        assert len(codec.encode(values, FLOAT)) < len(plain) * 0.9

    def test_rejects_ints_type(self):
        with pytest.raises(CodecError):
            get_codec("xor").encode([1], INT)

    def test_truncated(self):
        codec = get_codec("xor")
        data = codec.encode([1.0, 2.0], FLOAT)
        with pytest.raises(CodecError):
            codec.decode(data[:6], FLOAT)


class TestCompressionEffectiveness:
    """The size relationships the paper's N4 layout depends on."""

    def test_varint_on_deltas_beats_plain(self):
        # GPS-like microdegree walk: deltas are small.
        import random

        rng = random.Random(1)
        values = [42_350_000]
        for _ in range(2000):
            values.append(values[-1] + rng.randrange(-150, 150))
        from repro.algebra.transforms import delta_list

        deltas = [int(d) for d in delta_list(values)]
        varint = get_codec("varint").encode(deltas, INT)
        plain = get_codec("none").encode(values, INT)
        assert len(varint) < len(plain) / 3


#: (codec, dtype, representative single value) for every valid pairing —
#: the degenerate chunk shapes the batch scan's bulk path must handle.
DECODE_ALL_EDGE_CASES = [
    ("none", INT, 7),
    ("none", FLOAT, 3.25),
    ("none", STRING, "x"),
    ("varint", INT, -13),
    ("delta", INT, 42),
    ("delta", FLOAT, -2.5),
    ("rle", INT, 9),
    ("rle", STRING, "abc"),
    ("dict", INT, 3),
    ("dict", STRING, "k"),
    ("bitpack", INT, 12),
    ("for", INT, -100),
    ("lz", INT, 77),
    ("lz", STRING, "zz"),
    ("xor", FLOAT, 1.5),
]

_EDGE_IDS = [f"{c}-{d.name}" for c, d, _ in DECODE_ALL_EDGE_CASES]


class TestDecodeAllEdgeCases:
    """Empty and single-value chunks through every codec's bulk path.

    Empty chunks occur for empty columns (which still own one page) and
    single-value chunks whenever a value bisects down to one per page;
    both previously reached ``decode_all`` only through scan-equivalence
    suites, never directly.
    """

    @pytest.mark.parametrize(
        "codec_name,dtype,_value", DECODE_ALL_EDGE_CASES, ids=_EDGE_IDS
    )
    def test_empty_input(self, codec_name, dtype, _value):
        codec = get_codec(codec_name)
        encoded = codec.encode([], dtype)
        assert codec.decode_all(encoded, dtype) == []
        assert codec.decode(encoded, dtype) == []

    @pytest.mark.parametrize(
        "codec_name,dtype,value", DECODE_ALL_EDGE_CASES, ids=_EDGE_IDS
    )
    def test_single_value(self, codec_name, dtype, value):
        codec = get_codec(codec_name)
        encoded = codec.encode([value], dtype)
        assert codec.decode_all(encoded, dtype) == [value]
        assert codec.decode_all(encoded, dtype) == codec.decode(
            encoded, dtype
        )
