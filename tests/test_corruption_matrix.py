"""Corruption matrix: flip bytes everywhere, never return silently wrong rows.

A deterministic workload is run to completion, then a single byte is
flipped at evenly spaced sites across each persistent structure (page
file, WAL, catalog) and the store is reopened and scanned. Every outcome
must be one of:

* **exact** — the flip was harmless (free page, JSON whitespace, trailer
  padding) or transparently repaired from a WAL after-image: the scan
  returns exactly the model rows;
* **prefix** — a flip near the WAL tail is indistinguishable from a torn
  append, so recovery may legitimately drop a suffix of operations: the
  scan returns the model state after some prefix of completed ops;
* **loud** — a :class:`~repro.errors.CorruptionError` (or the store's
  loud-failure wrapper) is raised at open or during the scan;
* **degraded** — with ``degraded_reads=True``, a subset of the model rows
  plus a non-empty skip report whenever rows are missing.

What is *never* acceptable is a quiet success with rows that differ from
the model — silent corruption is the one outcome the integrity layer
exists to rule out.

Environment knobs (CI smoke uses small defaults):

* ``CORRUPT_ITERATIONS`` — flip sites per target structure (``0`` means
  every byte of the smallest structure — slow; meant for soak runs).
* ``CORRUPT_SEED`` — seed for the workload generator and flip masks.
"""

import os
import random
import shutil
import tempfile

from repro.engine.database import RodentStore
from repro.errors import CorruptionError, RodentStoreError
from repro.query.expressions import Range
from repro.types import Schema

SCHEMA = Schema.of("id:int", "val:int")

CORRUPT_ITERATIONS = int(os.environ.get("CORRUPT_ITERATIONS", "12"))
CORRUPT_SEED = int(os.environ.get("CORRUPT_SEED", "20260808"))


def build_workload(seed):
    """Deterministic ops plus the expected row set after each op."""
    rng = random.Random(seed)
    initial = [(i, rng.randrange(1000)) for i in range(150)]
    ops = [
        ("create", None),
        ("load", list(initial)),
        ("insert", [(300 + i, rng.randrange(1000)) for i in range(40)]),
        ("relayout", "columns(T)"),
        ("delete", (0, 29)),
        ("insert", [(400 + i, rng.randrange(1000)) for i in range(30)]),
        ("update", (300, 319)),
    ]
    rows: dict[int, int] = {}
    expected = [[]]  # state before any op (empty store, no table)
    for kind, arg in ops:
        if kind == "load":
            rows = dict(arg)
        elif kind == "insert":
            rows.update(dict(arg))
        elif kind == "delete":
            lo, hi = arg
            rows = {k: v for k, v in rows.items() if not lo <= k <= hi}
        elif kind == "update":
            lo, hi = arg
            rows = {k: (0 if lo <= k <= hi else v) for k, v in rows.items()}
        expected.append(sorted(rows.items()))
    return ops, expected


def apply_op(store, kind, arg):
    if kind == "create":
        store.create_table("T", SCHEMA)
    elif kind == "load":
        store.load("T", arg)
    elif kind == "insert":
        store.table("T").insert(arg)
    elif kind == "relayout":
        store.relayout("T", arg)
    elif kind == "delete":
        store.table("T").delete(Range("id", *arg))
    elif kind == "update":
        store.table("T").update({"val": 0}, Range("id", *arg))


def run_workload(path, checkpoint):
    ops, expected = build_workload(CORRUPT_SEED)
    store = RodentStore(path, page_size=1024, pool_capacity=64, durable=True)
    for kind, arg in ops:
        apply_op(store, kind, arg)
    if checkpoint:
        store.checkpoint()
        store.close()
    else:
        # Unclean close: flush pages and the log but keep the WAL so
        # reopen replays it (the repairable regime).
        store.pool.flush_all()
        store.wal.sync()
        store.wal.close()
        store.disk.close()
    return expected


def flip_sites(path, rng):
    size = os.path.getsize(path)
    if CORRUPT_ITERATIONS and CORRUPT_ITERATIONS < size:
        step = size / CORRUPT_ITERATIONS
        offsets = sorted({int(i * step) for i in range(CORRUPT_ITERATIONS)})
    else:
        offsets = list(range(size))
    return [(off, 1 << rng.randrange(8)) for off in offsets]


def flip_byte(path, offset, mask):
    with open(path, "r+b") as f:
        f.seek(offset)
        b = f.read(1)
        f.seek(offset)
        f.write(bytes([b[0] ^ mask]))


def scan_rows(store):
    if not store.catalog.has("T"):
        return None
    entry = store.catalog.entry("T")
    if entry.plan is None or (entry.layout is None and not entry.partitions):
        return []
    return sorted(store.table("T").scan())


def reopen_and_scan(path, degraded=False):
    """Returns ('rows', rows) or ('error', exc). Never leaks handles."""
    store = None
    try:
        store = RodentStore(
            path,
            page_size=1024,
            pool_capacity=64,
            durable=True,
            degraded_reads=degraded,
        )
        rows = scan_rows(store)
        skipped = (
            list(store.catalog.entry("T").last_corruption_skipped)
            if store.catalog.has("T")
            else []
        )
        return "rows", rows, skipped
    except RodentStoreError as exc:
        return "error", exc, []
    finally:
        if store is not None:
            try:
                store.wal.close()
                store.disk.close()
            except RodentStoreError:
                pass


def _copy_store(src_dir, dst_dir):
    shutil.copytree(src_dir, dst_dir, dirs_exist_ok=True)


def _matrix(target_suffix, checkpoint, degraded=False):
    """Run the flip matrix against one persistent structure."""
    rng = random.Random(CORRUPT_SEED ^ 0xC0A0)
    base = tempfile.mkdtemp()
    try:
        base_path = os.path.join(base, "clean")
        os.makedirs(base_path)
        expected = run_workload(os.path.join(base_path, "db"), checkpoint)
        final = expected[-1]
        target = os.path.join(base_path, "db" + target_suffix)
        assert os.path.getsize(target) > 0
        sites = flip_sites(target, rng)
        assert sites

        outcomes = {"exact": 0, "prefix": 0, "loud": 0, "degraded": 0}
        for offset, mask in sites:
            work = os.path.join(base, f"work_{offset}_{mask}")
            _copy_store(base_path, work)
            flipped = os.path.join(work, "db" + target_suffix)
            flip_byte(flipped, offset, mask)
            kind, result, skipped = reopen_and_scan(
                os.path.join(work, "db"), degraded=degraded
            )
            site = f"{target_suffix or 'pages'}@{offset}^{mask:#x}"
            if kind == "error":
                outcomes["loud"] += 1
            elif result == final:
                outcomes["exact"] += 1
            elif degraded:
                # A degraded scan may return any subset of the model
                # rows — but only with an accompanying skip report, and
                # never a row the model does not contain.
                got = dict(result or [])
                model = dict(final)
                for key, val in got.items():
                    assert model.get(key) == val, (
                        f"{site}: degraded scan returned wrong row "
                        f"{key}={val}"
                    )
                assert skipped, (
                    f"{site}: rows missing but no corruption report"
                )
                outcomes["degraded"] += 1
            elif result in expected:
                # Tail damage indistinguishable from a torn append:
                # a committed prefix of the workload, never a mix.
                assert not checkpoint, (
                    f"{site}: checkpointed store lost operations"
                )
                outcomes["prefix"] += 1
            else:
                raise AssertionError(
                    f"{site}: silently wrong rows {type(result)}"
                )
            shutil.rmtree(work)
        return outcomes
    finally:
        shutil.rmtree(base, ignore_errors=True)


def test_page_flips_with_live_wal_repair_or_fail():
    outcomes = _matrix("", checkpoint=False)
    # With the WAL intact every referenced-page flip must be repaired
    # (or land harmlessly); silent wrongness is already asserted inside.
    assert outcomes["exact"] + outcomes["loud"] + outcomes["prefix"] > 0
    assert outcomes["exact"] > 0, "no flip was repaired or harmless"


def test_page_flips_after_checkpoint_fail_loudly():
    outcomes = _matrix("", checkpoint=True)
    assert outcomes["prefix"] == 0
    assert outcomes["loud"] > 0, "no page flip was detected"


def test_page_flips_degraded_reads_report_skips():
    outcomes = _matrix("", checkpoint=True, degraded=True)
    assert outcomes["degraded"] + outcomes["exact"] + outcomes["loud"] > 0
    assert outcomes["degraded"] > 0, "no flip exercised the degraded path"


def test_wal_flips_prefix_or_loud():
    outcomes = _matrix(".wal", checkpoint=False)
    assert outcomes["loud"] > 0, "no WAL flip was detected"


def test_catalog_flips_rejected():
    outcomes = _matrix(".catalog.json", checkpoint=True)
    # Flips in JSON whitespace are canonicalized away (exact); anything
    # touching content must be rejected by the catalog checksum.
    assert outcomes["loud"] > 0, "no catalog flip was detected"
    assert outcomes["prefix"] == 0 and outcomes["degraded"] == 0
