"""Crash-recovery matrix: kill the store at every write boundary.

A deterministic workload (load, inserts, relayouts, deletes, updates) is
first probed with a never-firing :class:`FaultInjector` to count its write
operations, then replayed once per tested boundary with a crash injected
there. After each crash the store is reopened — which runs recovery — and
the surviving rows must equal the model state after the last *completed*
operation: every committed op is present, the interrupted op has vanished
without a trace.

Environment knobs (the CI smoke uses small defaults):

* ``CRASH_ITERATIONS`` — how many boundaries to test (evenly spaced across
  the workload; ``0`` means every single one).
* ``CRASH_SEED`` — seed for the workload generator and crash-mode choice.
"""

import os
import random
import shutil
import tempfile

from repro.engine.database import RodentStore
from repro.errors import CrashError, StorageError
from repro.query.expressions import Range
from repro.storage.faults import FaultInjector, lose_unsynced_wal
from repro.types import Schema

SCHEMA = Schema.of("id:int", "val:int")

CRASH_ITERATIONS = int(os.environ.get("CRASH_ITERATIONS", "24"))
CRASH_SEED = int(os.environ.get("CRASH_SEED", "20260808"))


def build_workload(seed):
    """A deterministic op list plus the expected row set after each op."""
    rng = random.Random(seed)
    initial = [(i, rng.randrange(1000)) for i in range(120)]

    ops = [
        ("create", None),
        ("load", list(initial)),
        ("insert", [(200 + i, rng.randrange(1000)) for i in range(30)]),
        ("relayout", "columns(T)"),
        ("insert", [(300 + i, rng.randrange(1000)) for i in range(30)]),
        ("flush", None),
        ("delete", (0, 39)),
        ("relayout", "partition[id; range, 128](T)"),
        ("update", (200, 229)),
        ("insert", [(400 + i, rng.randrange(1000)) for i in range(20)]),
    ]

    # Model the expected state after each op completes.
    rows: dict[int, int] = {}
    expected = []
    for kind, arg in ops:
        if kind in ("load",):
            rows = {k: v for k, v in arg}
        elif kind == "insert":
            rows.update({k: v for k, v in arg})
        elif kind == "delete":
            lo, hi = arg
            rows = {k: v for k, v in rows.items() if not lo <= k <= hi}
        elif kind == "update":
            lo, hi = arg
            rows = {
                k: (0 if lo <= k <= hi else v) for k, v in rows.items()
            }
        expected.append(sorted(rows.items()))
    return ops, expected


def apply_op(store, kind, arg):
    if kind == "create":
        if arg is None:
            store.create_table("T", SCHEMA)
        else:
            store.create_table("T", SCHEMA, layout=arg)
    elif kind == "load":
        store.load("T", arg)
    elif kind == "insert":
        store.table("T").insert(arg)
    elif kind == "flush":
        store.table("T").flush_inserts()
    elif kind == "compact":
        store.table("T").compact()
    elif kind == "relayout":
        store.relayout("T", arg)
    elif kind == "delete":
        store.table("T").delete(Range("id", *arg))
    elif kind == "update":
        store.table("T").update({"val": 0}, Range("id", *arg))


def run_workload(path, ops, injector):
    """Run ops until an injected crash; return (#completed, synced_size)."""
    store = RodentStore(
        path, page_size=1024, pool_capacity=64, durable=True,
        level_seal_rows=8,
    )
    store.inject_faults(injector)
    completed = 0
    try:
        for kind, arg in ops:
            apply_op(store, kind, arg)
            completed += 1
    except CrashError:
        pass
    synced = store.wal.synced_size
    try:
        store.wal.close()
    except StorageError:
        pass
    store.disk.close()
    return completed, synced


def test_crash_recovery_matrix():
    ops, expected = build_workload(CRASH_SEED)
    rng = random.Random(CRASH_SEED ^ 0x5EED)

    # Probe: count every write boundary of the full workload.
    with tempfile.TemporaryDirectory() as d:
        probe = FaultInjector(crash_after=1 << 62)
        completed, _ = run_workload(os.path.join(d, "db"), ops, probe)
        assert completed == len(ops), "probe run must not crash"
        total_writes = probe.writes
    assert total_writes > 20

    if CRASH_ITERATIONS and CRASH_ITERATIONS < total_writes:
        step = total_writes / CRASH_ITERATIONS
        boundaries = sorted({int(i * step) for i in range(CRASH_ITERATIONS)})
    else:
        boundaries = list(range(total_writes))

    for boundary in boundaries:
        mode = rng.choice(("before", "after", "torn"))
        d = tempfile.mkdtemp()
        try:
            path = os.path.join(d, "db")
            injector = FaultInjector(crash_after=boundary, mode=mode)
            completed, synced = run_workload(path, ops, injector)
            assert completed < len(ops), (
                f"boundary {boundary} did not crash"
            )
            lose_unsynced_wal(path + ".wal", synced)

            reopened = RodentStore(
                path, page_size=1024, pool_capacity=64, durable=True
            )
            if completed == 0:
                assert not reopened.catalog.has("T")
            else:
                want = expected[completed - 1]
                entry = reopened.catalog.entry("T")
                if entry.plan is None or (
                    entry.layout is None and not entry.partitions
                ):
                    got = []  # created but never loaded
                else:
                    got = sorted(reopened.table("T").scan())
                assert got == want, (
                    f"boundary {boundary} mode {mode}: after "
                    f"{completed}/{len(ops)} ops expected "
                    f"{len(want)} rows, got {len(got)}"
                )
            reopened.close()
        finally:
            shutil.rmtree(d)


def build_levelled_workload(seed):
    """A deterministic levelled (LSM) op list plus expected states.

    With ``level_seal_rows=8`` and ``levels[2; 2]`` the inserts drive
    run seals and size-tiered merges, the deletes write tombstones, and
    the explicit compact forces a full merge — so the crash boundaries
    sampled below land inside run-seal and manifest-swap transactions.
    """
    rng = random.Random(seed)
    initial = [(i, rng.randrange(1000)) for i in range(40)]
    ops = [
        ("create", "levels[2; 2](rows(T))"),
        ("load", list(initial)),
        ("insert", [(100 + i, rng.randrange(1000)) for i in range(10)]),
        ("insert", [(200 + i, rng.randrange(1000)) for i in range(10)]),
        ("delete", (5, 24)),
        ("insert", [(300 + i, rng.randrange(1000)) for i in range(20)]),
        ("compact", None),
        ("insert", [(400 + i, rng.randrange(1000)) for i in range(6)]),
        ("flush", None),
        ("delete", (300, 311)),
    ]
    rows: dict[int, int] = {}
    expected = []
    for kind, arg in ops:
        if kind == "load":
            rows = {k: v for k, v in arg}
        elif kind == "insert":
            rows.update({k: v for k, v in arg})
        elif kind == "delete":
            lo, hi = arg
            rows = {k: v for k, v in rows.items() if not lo <= k <= hi}
        expected.append(sorted(rows.items()))
    return ops, expected


def assert_level_structure_consistent(store):
    """Structural invariants of a recovered levelled manifest."""
    entry = store.catalog.entry("T")
    seqs = [r.max_seq for r in entry.runs]
    assert seqs == sorted(seqs), "manifest must stay oldest-first"
    rids = [r.rid for r in entry.runs]
    assert len(rids) == len(set(rids)), "run ids must be unique"
    assert all(r.rid < entry.next_run_id for r in entry.runs)
    assert all(r.max_seq < entry.next_run_seq for r in entry.runs)
    assert all(
        t[0] <= entry.next_run_seq for t in entry.level_tombstones
    )
    table = store.table("T")
    assert sorted(table.scan()) == sorted(table.scan_reference())


def test_crash_recovery_levelled_matrix():
    """Kill the store at every run-seal / manifest-swap write boundary.

    Seals and merges run *after* the triggering insert's transaction
    commits, so a crash inside them must leave exactly the committed
    rows: the reopened state equals the model either after the last
    fully-applied op or after the interrupted op's own commit (when the
    crash hit its post-commit maintenance) — never anything between, no
    lost committed rows, no resurrected tombstoned rows. The reopened
    manifest must also be structurally sound and keep working.
    """
    ops, expected = build_levelled_workload(CRASH_SEED)
    rng = random.Random(CRASH_SEED ^ 0x1E7E1)

    with tempfile.TemporaryDirectory() as d:
        probe = FaultInjector(crash_after=1 << 62)
        completed, _ = run_workload(os.path.join(d, "db"), ops, probe)
        assert completed == len(ops), "probe run must not crash"
        total_writes = probe.writes
    assert total_writes > 20

    if CRASH_ITERATIONS and CRASH_ITERATIONS < total_writes:
        step = total_writes / CRASH_ITERATIONS
        boundaries = sorted({int(i * step) for i in range(CRASH_ITERATIONS)})
    else:
        boundaries = list(range(total_writes))

    for boundary in boundaries:
        mode = rng.choice(("before", "after", "torn"))
        d = tempfile.mkdtemp()
        try:
            path = os.path.join(d, "db")
            injector = FaultInjector(crash_after=boundary, mode=mode)
            completed, synced = run_workload(path, ops, injector)
            assert completed < len(ops), (
                f"boundary {boundary} did not crash"
            )
            lose_unsynced_wal(path + ".wal", synced)

            reopened = RodentStore(
                path, page_size=1024, pool_capacity=64, durable=True,
                level_seal_rows=8,
            )
            if completed == 0:
                assert not reopened.catalog.has("T")
            else:
                entry = reopened.catalog.entry("T")
                if entry.plan is None or (
                    not entry.runs and not entry.pending
                ):
                    got = []
                else:
                    got = sorted(reopened.table("T").scan())
                # The interrupted op either never committed (state of
                # the previous op) or committed and crashed in its
                # post-commit seal/merge maintenance (its own state).
                allowed = [expected[completed - 1]]
                if completed < len(expected):
                    allowed.append(expected[completed])
                assert got in allowed, (
                    f"boundary {boundary} mode {mode}: after "
                    f"{completed}/{len(ops)} ops got {len(got)} rows, "
                    f"allowed "
                    f"{[len(a) for a in allowed]}"
                )
                if entry.plan is not None:
                    assert_level_structure_consistent(reopened)
                    # The recovered structure must remain fully usable:
                    # ingest more, merge everything, answers stay exact.
                    model = dict(got)
                    extra = [(900 + i, i) for i in range(10)]
                    reopened.table("T").insert(extra)
                    model.update({k: v for k, v in extra})
                    reopened.table("T").compact()
                    assert sorted(reopened.table("T").scan()) == sorted(
                        model.items()
                    )
            reopened.close()
        finally:
            shutil.rmtree(d)
