"""Tests for repro.curves (Morton / Z-order and Hilbert)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.curves.hilbert import hilbert_d2xy, hilbert_sort_key, hilbert_xy2d
from repro.curves.zorder import (
    deinterleave_bits,
    interleave_bits,
    zorder_matrix,
    zorder_positions,
    zorder_range_covers,
    zorder_sort_key,
)
from repro.errors import AlgebraError


class TestInterleave:
    def test_2d_examples(self):
        assert interleave_bits((0, 0)) == 0
        assert interleave_bits((1, 0)) == 1
        assert interleave_bits((0, 1)) == 2
        assert interleave_bits((1, 1)) == 3
        assert interleave_bits((2, 3)) == 0b1110

    def test_1d_is_identity(self):
        for v in (0, 1, 5, 1023):
            assert interleave_bits((v,)) == v

    def test_negative_rejected(self):
        with pytest.raises(AlgebraError):
            interleave_bits((-1, 0))
        with pytest.raises(AlgebraError):
            interleave_bits(())

    @given(st.lists(st.integers(0, 2**20), min_size=1, max_size=4))
    def test_roundtrip(self, coords):
        code = interleave_bits(coords)
        assert deinterleave_bits(code, len(coords)) == tuple(coords)

    @given(
        st.tuples(st.integers(0, 1000), st.integers(0, 1000)),
        st.tuples(st.integers(0, 1000), st.integers(0, 1000)),
    )
    def test_strictly_monotone_in_dominance(self, a, b):
        """If a dominates b componentwise and differs, code(a) > code(b)."""
        if a != b and all(x >= y for x, y in zip(a, b)):
            assert interleave_bits(a) > interleave_bits(b)

    def test_deinterleave_validation(self):
        with pytest.raises(AlgebraError):
            deinterleave_bits(5, 0)
        with pytest.raises(AlgebraError):
            deinterleave_bits(-1, 2)


class TestZOrderTraversal:
    def test_2x2_matrix_paper_convention(self):
        # First-level position is the more significant interleaved bit.
        assert zorder_matrix([[1, 2], [3, 4]]) == [1, 2, 3, 4]

    def test_4x4_matrix_z_pattern(self):
        matrix = [[i * 4 + j for j in range(4)] for i in range(4)]
        out = zorder_matrix(matrix)
        assert out == [0, 1, 4, 5, 2, 3, 6, 7, 8, 9, 12, 13, 10, 11, 14, 15]

    def test_ragged_matrix_supported(self):
        out = zorder_matrix([[1], [2, 3]])
        assert sorted(out) == [1, 2, 3]

    def test_scalar_row_rejected(self):
        with pytest.raises(AlgebraError):
            zorder_matrix([1, 2])

    def test_positions_cover_grid(self):
        coords = zorder_positions((2, 3))
        assert sorted(coords) == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)
        ]
        keys = [zorder_sort_key(c) for c in coords]
        assert keys == sorted(keys)

    def test_range_covers(self):
        cells = zorder_range_covers((1, 1), (2, 2))
        assert sorted(cells) == [(1, 1), (1, 2), (2, 1), (2, 2)]
        assert zorder_range_covers((2, 2), (1, 1)) == []

    def test_range_covers_dim_mismatch(self):
        with pytest.raises(AlgebraError):
            zorder_range_covers((0,), (1, 1))

    def test_locality_beats_row_major(self):
        """Average |code delta| between spatial neighbours is smaller in
        z-order than in row-major linearization for a square grid."""
        n = 16
        def row_major(c):
            return c[0] * n + c[1]
        neighbours = [
            ((i, j), (i + 1, j))
            for i in range(n - 1)
            for j in range(n)
        ]
        z_gap = sum(
            abs(zorder_sort_key(a) - zorder_sort_key(b))
            for a, b in neighbours
        )
        rm_gap = sum(abs(row_major(a) - row_major(b)) for a, b in neighbours)
        assert z_gap < rm_gap


class TestHilbert:
    def test_order1_visits_quadrants(self):
        points = [hilbert_d2xy(1, d) for d in range(4)]
        assert sorted(points) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    @given(st.integers(1, 6), st.data())
    def test_bijection(self, order, data):
        n = 1 << order
        d = data.draw(st.integers(0, n * n - 1))
        x, y = hilbert_d2xy(order, d)
        assert hilbert_xy2d(order, x, y) == d

    @given(st.integers(1, 6), st.data())
    def test_adjacent_d_are_grid_neighbours(self, order, data):
        """The defining Hilbert property: consecutive curve positions are
        Manhattan-distance-1 apart."""
        n = 1 << order
        d = data.draw(st.integers(0, n * n - 2))
        x1, y1 = hilbert_d2xy(order, d)
        x2, y2 = hilbert_d2xy(order, d + 1)
        assert abs(x1 - x2) + abs(y1 - y2) == 1

    def test_bounds_checked(self):
        with pytest.raises(AlgebraError):
            hilbert_d2xy(0, 0)
        with pytest.raises(AlgebraError):
            hilbert_d2xy(1, 4)
        with pytest.raises(AlgebraError):
            hilbert_xy2d(1, 2, 0)

    def test_sort_key_2d_only(self):
        assert hilbert_sort_key((0, 0)) == 0
        with pytest.raises(AlgebraError):
            hilbert_sort_key((1, 2, 3))

    def test_sort_key_auto_order(self):
        # Works for coordinates beyond order 1 without explicit order.
        keys = {hilbert_sort_key((x, y)) for x in range(4) for y in range(4)}
        assert len(keys) == 16
