"""Tests for repro.engine.database (the RodentStore engine)."""

import pytest

from repro.engine.database import RodentStore
from repro.errors import CatalogError, StorageError
from repro.query.expressions import Range
from repro.types import Schema

SCHEMA = Schema.of("t:int", "lat:int", "lon:int", "id:int")
RECORDS = [(i, (i * 37) % 500, (i * 53) % 500, i % 7) for i in range(300)]


class TestDDL:
    def test_create_default_rows_layout(self, store):
        table = store.create_table("T", SCHEMA)
        assert table.plan.kind == "rows"

    def test_duplicate_table_rejected(self, store):
        store.create_table("T", SCHEMA)
        with pytest.raises(CatalogError):
            store.create_table("T", SCHEMA)

    def test_drop_table(self, store):
        store.create_table("T", SCHEMA)
        store.load("T", RECORDS)
        store.drop_table("T")
        assert "T" not in store.tables()
        with pytest.raises(CatalogError):
            store.table("T")

    def test_drop_frees_pages(self, store):
        store.create_table("T", SCHEMA)
        table = store.load("T", RECORDS)
        pages_before = store.disk.num_pages
        store.drop_table("T")
        store.create_table("U", SCHEMA)
        store.load("U", RECORDS[:50])
        # Freed pages are recycled: allocation should not grow by much.
        assert store.disk.num_pages <= pages_before + 5

    def test_tables_listing(self, store):
        store.create_table("B", SCHEMA)
        store.create_table("A", SCHEMA)
        assert store.tables() == ["A", "B"]

    def test_layout_accepts_ast(self, store):
        from repro.algebra import ast

        table = store.create_table("T", SCHEMA, layout=ast.columns(ast.table("T")))
        assert table.plan.kind == "columns"


class TestLoad:
    def test_load_coerces_records(self, store):
        store.create_table("T", Schema.of("a:int", "b:float"))
        table = store.load("T", [(1, 2), (3, 4.5)])
        assert list(table.scan()) == [(1, 2.0), (3, 4.5)]

    def test_load_collects_stats(self, store):
        store.create_table("T", SCHEMA)
        store.load("T", RECORDS)
        stats = store.catalog.entry("T").stats
        assert stats.row_count == len(RECORDS)
        assert stats.fields["lat"].min_value == min(r[1] for r in RECORDS)

    def test_load_without_plan_fails(self, store):
        store.catalog.create("X", SCHEMA)
        with pytest.raises(CatalogError):
            store.load("X", RECORDS)

    def test_reload_replaces_layout(self, store):
        store.create_table("T", SCHEMA)
        store.load("T", RECORDS)
        table = store.load("T", RECORDS[:10])
        assert table.row_count == 10

    def test_unknown_table_load(self, store):
        with pytest.raises(CatalogError):
            store.load("nope", RECORDS)


class TestRelayout:
    def test_relayout_from_stored_records(self, store):
        store.create_table("T", SCHEMA)
        store.load("T", RECORDS)
        table = store.relayout("T", "columns(T)")
        assert table.plan.kind == "columns"
        assert sorted(table.scan()) == sorted(RECORDS)

    def test_relayout_lossy_requires_source(self, store):
        store.create_table("T", SCHEMA, layout="project[lat, lon](T)")
        store.load("T", RECORDS)
        with pytest.raises(StorageError):
            store.relayout("T", "columns(T)")

    def test_relayout_lossy_with_source(self, store):
        store.create_table("T", SCHEMA, layout="project[lat, lon](T)")
        store.load("T", RECORDS)
        table = store.relayout("T", "columns(T)", source_records=RECORDS)
        assert sorted(table.scan()) == sorted(RECORDS)

    def test_relayout_to_grid_supports_spatial(self, store):
        store.create_table("T", SCHEMA)
        store.load("T", RECORDS)
        table = store.relayout(
            "T", "grid[lat, lon],[100, 100](project[lat, lon](T))"
        )
        got = sorted(table.scan(predicate=Range("lat", 0, 99)))
        want = sorted((r[1], r[2]) for r in RECORDS if r[1] <= 99)
        assert got == want

    def test_relayout_clears_overflow(self, store):
        store.create_table("T", SCHEMA)
        table = store.load("T", RECORDS[:100])
        table.insert(RECORDS[100:120])
        table.flush_inserts()
        store.relayout("T", "columns(T)", source_records=RECORDS[:100])
        assert store.table("T").overflow_row_count == 0


class TestRunCold:
    def test_cold_run_counts_fresh_io(self, loaded_store):
        table = loaded_store.table("T")
        _, io1 = loaded_store.run_cold(lambda: list(table.scan()))
        _, io2 = loaded_store.run_cold(lambda: list(table.scan()))
        assert io1.page_reads == io2.page_reads > 0

    def test_warm_scan_hits_pool(self, loaded_store):
        table = loaded_store.table("T")
        loaded_store.run_cold(lambda: list(table.scan()))
        with loaded_store.disk.measure() as io:
            list(table.scan())
        assert io.page_reads == 0  # everything cached

    def test_result_passthrough(self, loaded_store):
        table = loaded_store.table("T")
        result, _ = loaded_store.run_cold(lambda: 42)
        assert result == 42


class TestLifecycle:
    def test_context_manager_closes(self, tmp_path):
        path = str(tmp_path / "db.pages")
        with RodentStore(path=path, page_size=1024) as store:
            store.create_table("T", SCHEMA)
            store.load("T", RECORDS[:20])
        # File persisted.
        import os

        assert os.path.getsize(path) > 0

    def test_file_backed_reopen_reads_pages(self, tmp_path):
        path = str(tmp_path / "db.pages")
        store = RodentStore(path=path, page_size=1024)
        store.create_table("T", SCHEMA)
        table = store.load("T", RECORDS[:20])
        extent = list(table.layout.extent.page_ids)
        store.close()
        from repro.storage.disk import DiskManager

        disk = DiskManager(path, page_size=1024)
        assert disk.num_pages >= len(extent)
        disk.close()

    def test_transactions_available(self, store):
        txn = store.transactions.begin()
        page_id = store.disk.allocate_page()
        txn.update_page(page_id, 0, b"x")
        txn.commit()
        store.pool.flush_all()
        assert bytes(store.disk.read_page(page_id)[:1]) == b"x"
