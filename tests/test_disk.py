"""Tests for repro.storage.disk (page store, I/O accounting)."""

import pytest

from repro.errors import StorageError
from repro.storage.disk import DiskManager, IOStats


class TestAllocation:
    def test_allocate_sequential_ids(self, disk):
        ids = [disk.allocate_page() for _ in range(4)]
        assert ids == [0, 1, 2, 3]
        assert disk.num_pages == 4

    def test_allocate_contiguous(self, disk):
        disk.allocate_page()
        ids = disk.allocate_contiguous(5)
        assert ids == [1, 2, 3, 4, 5]

    def test_allocate_contiguous_requires_positive(self, disk):
        with pytest.raises(StorageError):
            disk.allocate_contiguous(0)

    def test_free_page_recycled(self, disk):
        a = disk.allocate_page()
        disk.free_page(a)
        b = disk.allocate_page()
        assert b == a

    def test_freed_page_zeroed_on_reuse(self, disk):
        a = disk.allocate_page()
        disk.write_page(a, b"\xff" * disk.page_size)
        disk.free_page(a)
        b = disk.allocate_page()
        assert disk.read_page(b) == bytearray(disk.page_size)

    def test_small_page_size_rejected(self):
        with pytest.raises(StorageError):
            DiskManager(page_size=32)


class TestReadWrite:
    def test_roundtrip(self, disk):
        a = disk.allocate_page()
        data = bytes(range(256)) * (disk.page_size // 256)
        disk.write_page(a, data)
        assert bytes(disk.read_page(a)) == data

    def test_write_wrong_size(self, disk):
        a = disk.allocate_page()
        with pytest.raises(StorageError):
            disk.write_page(a, b"short")

    def test_out_of_range(self, disk):
        with pytest.raises(StorageError):
            disk.read_page(0)
        disk.allocate_page()
        with pytest.raises(StorageError):
            disk.read_page(5)
        with pytest.raises(StorageError):
            disk.read_page(-1)


class TestSeekAccounting:
    def test_sequential_reads_one_seek(self, disk):
        ids = disk.allocate_contiguous(10)
        disk.stats.reset()
        disk.reset_head()
        for page_id in ids:
            disk.read_page(page_id)
        assert disk.stats.page_reads == 10
        assert disk.stats.read_seeks == 1  # initial positioning only

    def test_random_reads_many_seeks(self, disk):
        ids = disk.allocate_contiguous(10)
        disk.stats.reset()
        disk.reset_head()
        for page_id in [0, 5, 1, 9, 2]:
            disk.read_page(page_id)
        assert disk.stats.read_seeks == 5

    def test_backward_adjacent_counts_as_seek(self, disk):
        disk.allocate_contiguous(3)
        disk.stats.reset()
        disk.reset_head()
        disk.read_page(2)
        disk.read_page(1)  # backwards: a seek
        assert disk.stats.read_seeks == 2

    def test_write_seeks(self, disk):
        ids = disk.allocate_contiguous(4)
        disk.stats.reset()
        disk.reset_head()
        data = bytes(disk.page_size)
        disk.write_page(ids[0], data)
        disk.write_page(ids[1], data)
        disk.write_page(ids[3], data)
        assert disk.stats.page_writes == 3
        assert disk.stats.write_seeks == 2

    def test_reads_continue_from_write_position(self, disk):
        ids = disk.allocate_contiguous(3)
        disk.stats.reset()
        disk.reset_head()
        disk.write_page(ids[0], bytes(disk.page_size))
        disk.read_page(ids[1])  # adjacent to the write head
        assert disk.stats.read_seeks == 0


class TestMeasure:
    def test_measure_delta(self, disk):
        ids = disk.allocate_contiguous(4)
        disk.read_page(ids[0])
        with disk.measure() as io:
            disk.read_page(ids[1])
            disk.read_page(ids[2])
        assert io.page_reads == 2
        assert disk.stats.page_reads == 3

    def test_measure_nested_operations(self, disk):
        ids = disk.allocate_contiguous(2)
        with disk.measure() as io:
            disk.write_page(ids[0], bytes(disk.page_size))
        assert io.page_writes == 1
        assert io.page_reads == 0


class TestIOStats:
    def test_snapshot_delta(self):
        stats = IOStats(10, 5, 3, 1)
        snap = stats.snapshot()
        stats.page_reads += 7
        delta = stats.delta(snap)
        assert delta.page_reads == 7
        assert delta.page_writes == 0

    def test_totals(self):
        stats = IOStats(10, 5, 3, 1)
        assert stats.total_pages == 15
        assert stats.total_seeks == 4

    def test_equality(self):
        assert IOStats(1, 2, 3, 4) == IOStats(1, 2, 3, 4)
        assert IOStats(1, 2, 3, 4) != IOStats(0, 2, 3, 4)

    def test_reset(self):
        stats = IOStats(1, 2, 3, 4)
        stats.reset()
        assert stats == IOStats()


class TestFileBackend:
    def test_persistence_across_instances(self, tmp_path):
        path = str(tmp_path / "db.pages")
        with DiskManager(path, page_size=256) as disk:
            a = disk.allocate_page()
            disk.write_page(a, b"\xab" * 256)
        with DiskManager(path, page_size=256) as disk:
            assert disk.num_pages == 1
            assert bytes(disk.read_page(0)) == b"\xab" * 256

    def test_nonmultiple_size_rejected(self, tmp_path):
        path = tmp_path / "bad.pages"
        path.write_bytes(b"x" * 100)
        with pytest.raises(StorageError):
            DiskManager(str(path), page_size=256)

    def test_file_seek_accounting_matches_memory(self, tmp_path):
        mem = DiskManager(page_size=256)
        fil = DiskManager(str(tmp_path / "f.pages"), page_size=256)
        for disk in (mem, fil):
            ids = disk.allocate_contiguous(6)
            disk.stats.reset()
            disk.reset_head()
            for page_id in [0, 1, 2, 5, 4]:
                disk.read_page(page_id)
        assert mem.stats == fil.stats
        fil.close()
