"""Tests for the durability layer: WAL-backed mutations, MVCC snapshot
scans, checkpointing, clean close, and reopen-after-crash recovery."""

import os

import pytest

from repro.engine.database import RodentStore
from repro.errors import CrashError, StorageError
from repro.query.expressions import Range
from repro.storage.faults import FaultInjector, lose_unsynced_wal
from repro.types import Schema

SCHEMA = Schema.of("id:int", "val:int")
ROWS = [(i, i * 3) for i in range(300)]


def open_store(tmp_path, **kw):
    return RodentStore(
        str(tmp_path / "db.pages"), page_size=1024, pool_capacity=64,
        durable=True, **kw,
    )


def abandon(store):
    """Simulate a crash: release the file handles without checkpointing."""
    try:
        store.wal.close()
    except StorageError:
        pass
    store.disk.close()


class TestDurableKnob:
    def test_durable_requires_path(self):
        with pytest.raises(StorageError):
            RodentStore(durable=True)

    def test_derived_paths(self, tmp_path):
        store = open_store(tmp_path)
        base = str(tmp_path / "db.pages")
        assert store.wal.path == base + ".wal"
        assert store.catalog_path == base + ".catalog.json"
        store.close()

    def test_non_durable_store_logs_nothing(self):
        store = RodentStore(page_size=1024, pool_capacity=64)
        store.create_table("T", SCHEMA)
        store.load("T", ROWS)
        assert store.wal.appends == 0
        assert store.storage_stats()["recovery"]["durable"] is False


class TestWalGrowthAndStats:
    def test_mutations_append_and_commit(self, tmp_path):
        store = open_store(tmp_path)
        store.create_table("T", SCHEMA)
        store.load("T", ROWS)
        store.table("T").insert([(1000, 1), (1001, 2)])
        stats = store.storage_stats()
        assert stats["wal"]["wal_bytes"] > 0
        assert stats["wal"]["appends"] >= 6  # 3 txns x (BEGIN..COMMIT)
        assert stats["transactions"]["txns_committed"] == 3
        assert stats["transactions"]["txns_aborted"] == 0
        assert stats["recovery"]["recoveries_run"] == 0
        store.close()

    def test_failed_mutation_aborts(self, tmp_path):
        store = open_store(tmp_path)
        store.create_table("T", SCHEMA)
        with pytest.raises(RuntimeError):
            with store.mutate("T"):
                raise RuntimeError("boom")
        assert store.storage_stats()["transactions"]["txns_aborted"] == 1
        store.close()

    def test_checkpoint_truncates_wal(self, tmp_path):
        store = open_store(tmp_path)
        store.create_table("T", SCHEMA)
        store.load("T", ROWS)
        assert store.wal.size_bytes > 0
        store.checkpoint()
        assert store.wal.size_bytes == 0
        assert os.path.exists(store.catalog_path)
        assert store.checkpoints == 1
        store.close()


class TestCleanClose:
    def test_close_checkpoints_and_reopen_is_clean(self, tmp_path):
        store = open_store(tmp_path)
        store.create_table("T", SCHEMA)
        store.load("T", ROWS)
        store.close()
        assert os.path.getsize(str(tmp_path / "db.pages") + ".wal") == 0

        reopened = open_store(tmp_path)
        assert reopened.recovery_summary == {"clean": True}
        assert sorted(reopened.table("T").scan()) == sorted(ROWS)
        reopened.close()

    def test_reopen_preserves_layout_and_pending(self, tmp_path):
        store = open_store(tmp_path)
        store.create_table("T", SCHEMA)
        store.load("T", ROWS)
        store.relayout("T", "columns(T)")
        store.table("T").insert([(9000, 1)])
        store.close()

        reopened = open_store(tmp_path)
        table = reopened.table("T")
        assert table.plan.kind == "columns"
        assert len(list(table.scan())) == len(ROWS) + 1
        reopened.close()


class TestRecovery:
    def test_unclean_close_triggers_recovery(self, tmp_path):
        store = open_store(tmp_path)
        store.create_table("T", SCHEMA)
        store.load("T", ROWS)
        store.table("T").insert([(9000, 1), (9001, 2)])
        abandon(store)

        reopened = open_store(tmp_path)
        summary = reopened.recovery_summary
        assert summary["clean"] is False
        assert summary["committed_txns"] == 3
        assert summary["rows_replayed"] == 2
        assert reopened.recoveries_run == 1
        assert reopened.storage_stats()["recovery"]["recoveries_run"] == 1
        assert len(list(reopened.table("T").scan())) == len(ROWS) + 2
        # recovery re-checkpoints, so a second reopen is clean
        abandon(reopened)
        third = open_store(tmp_path)
        assert third.recovery_summary == {"clean": True}
        third.close()

    def test_dropped_table_stays_dropped(self, tmp_path):
        store = open_store(tmp_path)
        store.create_table("T", SCHEMA)
        store.load("T", ROWS)
        store.create_table("U", SCHEMA)
        store.drop_table("T")
        abandon(store)

        reopened = open_store(tmp_path)
        assert not reopened.catalog.has("T")
        assert reopened.catalog.has("U")
        reopened.close()

    def test_torn_wal_tail_is_discarded(self, tmp_path):
        store = open_store(tmp_path)
        store.create_table("T", SCHEMA)
        store.load("T", ROWS)
        store.table("T").insert([(9000, 1)])
        abandon(store)
        # Tear the tail: the insert's COMMIT record is damaged, so the
        # insert must roll back while the earlier load survives.
        wal_path = str(tmp_path / "db.pages") + ".wal"
        with open(wal_path, "r+b") as f:
            f.truncate(os.path.getsize(wal_path) - 3)

        reopened = open_store(tmp_path)
        assert reopened.recovery_summary["clean"] is False
        assert reopened.recovery_summary["rows_replayed"] == 0
        assert sorted(reopened.table("T").scan()) == sorted(ROWS)
        reopened.close()


class TestFaultInjection:
    def test_crash_mid_relayout_keeps_old_version(self, tmp_path):
        store = open_store(tmp_path)
        store.create_table("T", SCHEMA)
        store.load("T", ROWS)
        store.inject_faults(
            FaultInjector(crash_after=1, mode="torn", target="wal")
        )
        with pytest.raises(CrashError):
            store.relayout("T", "columns(T)")
        synced = store.wal.synced_size
        abandon(store)
        lose_unsynced_wal(str(tmp_path / "db.pages") + ".wal", synced)

        reopened = open_store(tmp_path)
        table = reopened.table("T")
        assert table.plan.kind == "rows"
        assert sorted(table.scan()) == sorted(ROWS)
        reopened.close()

    def test_fired_injector_poisons_store(self, tmp_path):
        store = open_store(tmp_path)
        store.create_table("T", SCHEMA)
        store.inject_faults(
            FaultInjector(crash_after=0, mode="before", target="wal")
        )
        with pytest.raises(CrashError):
            store.load("T", ROWS)
        with pytest.raises(CrashError):
            store.load("T", ROWS)
        abandon(store)

    def test_fsync_lies_lose_unsynced_commits(self, tmp_path):
        store = open_store(tmp_path)
        store.create_table("T", SCHEMA)
        store.load("T", ROWS)
        store.checkpoint()
        store.inject_faults(FaultInjector(crash_after=1 << 62,
                                          fail_fsync=True))
        store.table("T").insert([(9000, 1)])  # "committed", fsync lied
        synced = store.wal.synced_size
        abandon(store)
        lose_unsynced_wal(str(tmp_path / "db.pages") + ".wal", synced)

        reopened = open_store(tmp_path)
        assert sorted(reopened.table("T").scan()) == sorted(ROWS)
        reopened.close()


class TestSnapshotScans:
    def test_scan_survives_concurrent_relayout(self, tmp_path):
        store = open_store(tmp_path)
        store.create_table("T", SCHEMA)
        store.load("T", ROWS)
        table = store.table("T")
        it = table.scan()
        first = next(it)
        store.relayout("T", "columns(T)")
        rest = list(it)
        assert sorted([first] + rest) == sorted(ROWS)
        store.close()

    def test_scan_survives_concurrent_delete(self, tmp_path):
        store = open_store(tmp_path)
        store.create_table("T", SCHEMA)
        store.load("T", ROWS)
        table = store.table("T")
        it = table.scan(predicate=Range("id", 0, 10_000))
        first = next(it)
        assert table.delete() == len(ROWS)
        rest = list(it)
        assert sorted([first] + rest) == sorted(ROWS)
        assert list(table.scan()) == []
        store.close()

    def test_new_scan_sees_new_version(self, tmp_path):
        store = open_store(tmp_path)
        store.create_table("T", SCHEMA)
        store.load("T", ROWS)
        table = store.table("T")
        table.update({"val": 0}, Range("id", 0, 9))
        got = sorted(table.scan(predicate=Range("id", 0, 9)))
        assert got == [(i, 0) for i in range(10)]
        store.close()


class TestUpdateDelete:
    def test_update_with_callable(self, tmp_path):
        store = open_store(tmp_path)
        store.create_table("T", SCHEMA)
        store.load("T", ROWS)
        n = store.table("T").update(
            {"val": lambda row: row["val"] + 1}, Range("id", 0, 4)
        )
        assert n == 5
        got = sorted(store.table("T").scan(predicate=Range("id", 0, 4)))
        assert got == [(i, i * 3 + 1) for i in range(5)]
        store.close()

    def test_update_unknown_field_rejected(self, tmp_path):
        store = open_store(tmp_path)
        store.create_table("T", SCHEMA)
        store.load("T", ROWS)
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            store.table("T").update({"nope": 1})
        store.close()

    def test_partitioned_delete_and_recovery(self, tmp_path):
        store = open_store(tmp_path)
        store.create_table(
            "T", SCHEMA, layout="partition[id; range, 100](T)"
        )
        store.load("T", ROWS)
        table = store.table("T")
        assert table.is_partitioned
        n = table.delete(Range("id", 0, 99))
        assert n == 100
        abandon(store)

        reopened = open_store(tmp_path)
        assert len(list(reopened.table("T").scan())) == len(ROWS) - 100
        reopened.close()
