"""Integration test: the Figure 2 case study reproduces the paper's shape."""

import pytest

from repro.experiments import run_figure2


@pytest.fixture(scope="module")
def figure2():
    # Small scale so the test stays fast; verify=True additionally checks
    # all layouts return identical (lat, lon) result sets.
    return run_figure2(
        n_observations=15_000,
        n_queries=12,
        page_size=8192,
        n_vehicles=10,
        cells_per_side=24,
        verify=True,
    )


class TestFigure2Shape:
    def test_all_layouts_present(self, figure2):
        assert set(figure2.layouts) == {"N1", "N2", "N3", "N4", "rtree"}

    def test_paper_ordering_holds(self, figure2):
        """Figure 2's bar ordering: N1 > N2 > rtree > N3 > N4."""
        pages = {k: v.pages_per_query for k, v in figure2.layouts.items()}
        assert pages["N1"] > pages["N2"]
        assert pages["N2"] > pages["rtree"]
        assert pages["rtree"] > pages["N3"]
        assert pages["N3"] > pages["N4"]

    def test_grid_two_orders_of_magnitude_vs_scan(self, figure2):
        """'data isolation and gridding reduce the total number of pages by
        about two orders of magnitude versus a raw scan' — at reduced scale
        we require at least ~20x."""
        pages = {k: v.pages_per_query for k, v in figure2.layouts.items()}
        assert pages["N1"] / pages["N3"] > 20

    def test_delta_compression_shrinks_n4(self, figure2):
        n3 = figure2.layouts["N3"]
        n4 = figure2.layouts["N4"]
        assert n4.storage_pages < n3.storage_pages
        assert n4.pages_per_query < n3.pages_per_query

    def test_latency_model_tracks_pages(self, figure2):
        """'the total query time is also about one hundred times faster' —
        the modelled latency must preserve the ordering."""
        ms = {k: v.est_ms_per_query for k, v in figure2.layouts.items()}
        assert ms["N1"] > ms["N3"] > ms["N4"]
        assert ms["N1"] / ms["N3"] > 5

    def test_all_layouts_return_same_records(self, figure2):
        counts = {
            k: v.records_per_query for k, v in figure2.layouts.items()
        }
        # verify=True already asserted equality on sampled queries; the
        # averages must agree across every layout too.
        baseline = counts["N1"]
        for name, value in counts.items():
            assert value == pytest.approx(baseline), name

    def test_format_table_renders(self, figure2):
        text = figure2.format_table()
        assert "zcurve + delta" in text
        assert "rtree" in text

    def test_rows_accessor(self, figure2):
        rows = figure2.rows()
        assert [name for name, _ in rows] == ["N1", "N2", "N3", "N4", "rtree"]
