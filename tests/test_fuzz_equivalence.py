"""Differential fuzz suite: random schemas × layouts × queries, asserting
that every scan path returns the same rows — before and after automatic
reorganization.

Each iteration builds a seeded random scenario:

* a random schema (3–5 int fields with mixed cardinalities);
* a random physical design across every layout family — rows (plain or
  sorted), columns (pure or grouped), grid, folded, plus horizontally
  **partitioned** tables (range or hash, wrapping a random inner design) —
  plus inserted data in both reorganization states (a flushed *overflow*
  region and an unflushed *pending* buffer, per partition when
  partitioned);
* a batch of random queries (projection / range / conjunction / disjunction
  / negation predicates, orders, limits).

For every query it asserts ``Table.scan_batches`` ≡ ``Table.scan_reference``
≡ the compiled query pipeline (``Q.run()``), with zone-map + partition
pruning on *and* off and with the parallel partition-scan executor on *and*
off; then it re-layouts the table mid-stream (a random different design via
``relayout()``, then the adaptive loop via ``store.adapt()`` — which for
partitioned tables rewrites hot partitions individually) and asserts the
whole equivalence again — automatic re-layouts must never change query
answers.

Iteration count / seed are environment-tunable so CI can run a capped,
fixed-seed sweep::

    FUZZ_ITERATIONS=8 FUZZ_SEED=1 pytest tests/test_fuzz_equivalence.py
"""

from __future__ import annotations

import os
import random

import pytest

from repro.engine.database import RodentStore
from repro.query.expressions import And, Not, Or, Predicate, Range, Rect
from repro.types.schema import Schema

FUZZ_ITERATIONS = int(os.environ.get("FUZZ_ITERATIONS", "20"))
FUZZ_SEED = int(os.environ.get("FUZZ_SEED", "20260730"))

QUERIES_PER_SCENARIO = 6


# ---------------------------------------------------------------------------
# scenario generation
# ---------------------------------------------------------------------------


def random_schema(rng: random.Random) -> tuple[Schema, list[int]]:
    """A random all-int schema plus each field's value-domain size."""
    n_fields = rng.randint(3, 5)
    names = [f"f{i}" for i in range(n_fields)]
    domains = [rng.choice([8, 40, 200]) for _ in names]
    schema = Schema.of(*[f"{n}:int" for n in names])
    return schema, domains


def random_records(
    rng: random.Random, domains: list[int], n: int
) -> list[tuple]:
    return [
        tuple(rng.randrange(d) for d in domains) for _ in range(n)
    ]


def random_layout(
    rng: random.Random, names: list[str], domains: list[int]
) -> str:
    """A random non-lossy design drawn from every layout family."""
    kind = rng.choice(
        [
            "rows",
            "sorted",
            "columns",
            "grouped",
            "grid",
            "fold",
            "partition-range",
            "partition-hash",
        ]
    )
    if kind == "partition-range":
        i = rng.randrange(len(names))
        n_points = rng.randint(1, 3)
        points = sorted(
            rng.sample(range(1, max(2, domains[i])), min(n_points, domains[i] - 1))
        )
        inner = random_layout(rng, names, domains)
        while inner.startswith("partition"):
            inner = random_layout(rng, names, domains)
        rendered = ", ".join(str(p) for p in points)
        return f"partition[r.{names[i]}; range, {rendered}]({inner})"
    if kind == "partition-hash":
        i = rng.randrange(len(names))
        buckets = rng.randint(2, 4)
        inner = random_layout(rng, names, domains)
        while inner.startswith("partition"):
            inner = random_layout(rng, names, domains)
        return f"partition[r.{names[i]}; hash, {buckets}]({inner})"
    if kind == "rows":
        return "T"
    if kind == "sorted":
        return f"orderby[{rng.choice(names)}](T)"
    if kind == "columns":
        return "columns(T)"
    if kind == "grouped":
        shuffled = list(names)
        rng.shuffle(shuffled)
        groups: list[list[str]] = [[]]
        for name in shuffled:
            if groups[-1] and rng.random() < 0.5:
                groups.append([])
            groups[-1].append(name)
        inner = ", ".join("[" + ", ".join(g) + "]" for g in groups)
        return f"columns[{inner}](T)"
    if kind == "grid":
        a, b = rng.sample(range(len(names)), 2)
        stride_a = max(1, domains[a] // rng.choice([2, 4, 8]))
        stride_b = max(1, domains[b] // rng.choice([2, 4, 8]))
        expr = f"grid[{names[a]}, {names[b]}],[{stride_a}, {stride_b}](T)"
        order = rng.choice(["", "zorder", "hilbert"])
        return f"{order}({expr})" if order else expr
    # fold: group by the lowest-cardinality field, nest the rest.
    group_index = min(range(len(names)), key=lambda i: domains[i])
    nest = [n for i, n in enumerate(names) if i != group_index]
    return f"fold[{', '.join(nest)}; {names[group_index]}](T)"


def random_predicate(
    rng: random.Random, names: list[str], domains: list[int]
) -> Predicate | None:
    def one_range() -> Range:
        i = rng.randrange(len(names))
        lo = rng.randrange(domains[i])
        hi = min(domains[i] - 1, lo + rng.randrange(1, max(2, domains[i] // 2)))
        if rng.random() < 0.15:
            return Range(names[i], lo=lo)  # open upper bound
        return Range(names[i], lo, hi)

    shape = rng.random()
    if shape < 0.2:
        return None
    if shape < 0.5:
        return one_range()
    if shape < 0.7:
        fields = rng.sample(range(len(names)), 2)
        return Rect(
            {
                names[i]: (
                    rng.randrange(domains[i] // 2),
                    rng.randrange(domains[i] // 2, domains[i]),
                )
                for i in fields
            }
        )
    if shape < 0.85:
        return And(one_range(), one_range())
    if shape < 0.95:
        return Or(one_range(), one_range())
    return Not(one_range())


def random_query(rng: random.Random, scan_names: list[str]) -> dict:
    fieldlist = None
    if rng.random() < 0.6:
        k = rng.randint(1, len(scan_names))
        fieldlist = rng.sample(scan_names, k)
    order = None
    if rng.random() < 0.4:
        k = rng.randint(1, min(2, len(scan_names)))
        order = [(n, rng.random() < 0.7) for n in rng.sample(scan_names, k)]
    limit = rng.choice([None, None, None, 0, 1, 7, 50])
    return {"fieldlist": fieldlist, "order": order, "limit": limit}


# ---------------------------------------------------------------------------
# the differential check
# ---------------------------------------------------------------------------


def run_query_all_paths(
    store: RodentStore, query: dict, predicate, vector_flip: bool = False
) -> None:
    """Assert batch ≡ reference ≡ compiled pipeline across the pruning
    (zone-map + partition), vectorized-execution, and parallel-executor
    toggles.

    ``store.vectorized`` rides the pruning loop so both engines —
    selection bitmaps / typed-buffer operators vs the per-row closures —
    run in every call; ``vector_flip`` (alternated per fuzz iteration)
    inverts the pairing so all four pruning x vectorized combinations get
    exercised across iterations without doubling the run count."""
    table = store.table("T")
    # Parallelism only has a distinct code path on partitioned tables;
    # skip the redundant re-run otherwise.
    worker_settings = (0, 3) if table.is_partitioned else (0,)
    results = {}
    for pruning in (True, False):
        store.zone_pruning = pruning
        store.partition_pruning = pruning
        store.vectorized = pruning != vector_flip
        for workers in worker_settings:
            store.scan_workers = workers
            batch = [
                row
                for rows in table.scan_batches(
                    fieldlist=query["fieldlist"],
                    predicate=predicate,
                    order=query["order"],
                    limit=query["limit"],
                )
                for row in rows
            ]
            reference = list(
                table.scan_reference(
                    fieldlist=query["fieldlist"],
                    predicate=predicate,
                    order=query["order"],
                )
            )
            if query["limit"] is not None:
                reference = reference[: query["limit"]]
            assert batch == reference, (
                f"batch != reference (pruning={pruning}, "
                f"workers={workers}, query={query}, "
                f"predicate={predicate!r}, layout="
                f"{table.plan.expr.to_text()})"
            )
            q = store.query("T")
            if query["fieldlist"] is not None:
                q = q.select(*query["fieldlist"])
            if predicate is not None:
                q = q.where(predicate)
            if query["order"] is not None:
                q = q.order_by(*query["order"])
            if query["limit"] is not None:
                q = q.limit(query["limit"])
            planned = q.run()
            assert planned == batch, (
                f"planner != batch (pruning={pruning}, "
                f"workers={workers}, query={query}, "
                f"predicate={predicate!r}, layout="
                f"{table.plan.expr.to_text()})"
            )
            results[(pruning, workers)] = batch
    store.zone_pruning = True
    store.partition_pruning = True
    store.scan_workers = 0
    store.vectorized = True
    baseline = next(iter(results.values()))
    assert all(
        r == baseline for r in results.values()
    ), "pruning/vectorized/parallel toggles changed query answers"


def check_ground_truth(store: RodentStore, expected: list[tuple]) -> None:
    """The full unprojected scan equals the logical relation (multiset)."""
    table = store.table("T")
    scan_names = table.scan_schema().names()
    logical_names = table.logical_schema.names()
    idx = [logical_names.index(n) for n in scan_names]
    want = sorted(tuple(rec[i] for i in idx) for rec in expected)
    got = sorted(table.scan())
    assert got == want, (
        f"full scan lost/invented rows (layout="
        f"{table.plan.expr.to_text()}): {len(got)} vs {len(want)}"
    )


@pytest.mark.parametrize("iteration", range(FUZZ_ITERATIONS))
def test_fuzz_differential_equivalence(iteration: int):
    rng = random.Random(FUZZ_SEED + iteration)
    schema, domains = random_schema(rng)
    names = list(schema.names())
    expected = random_records(rng, domains, rng.randint(80, 300))

    store = RodentStore(
        page_size=rng.choice([512, 1024, 4096]), pool_capacity=64
    )
    layout = random_layout(rng, names, domains)
    store.create_table("T", schema, layout=layout)
    n_loaded = rng.randint(len(expected) // 2, len(expected))
    table = store.load("T", expected[:n_loaded])

    # Drive the table into the paper's reorganization states: a flushed
    # overflow region plus an unflushed pending buffer.
    remaining = expected[n_loaded:]
    cut = rng.randint(0, len(remaining))
    if remaining[:cut]:
        table.insert(remaining[:cut])
        table.flush_inserts()
    if remaining[cut:]:
        table.insert(remaining[cut:])

    check_ground_truth(store, expected)
    scan_names = list(store.table("T").scan_schema().names())
    queries = [
        (random_query(rng, scan_names), random_predicate(rng, names, domains))
        for _ in range(QUERIES_PER_SCENARIO)
    ]
    vector_flip = bool(iteration % 2)
    for query, predicate in queries:
        run_query_all_paths(store, query, predicate, vector_flip)

    # Mid-stream reorganization #1: an explicit relayout to a different
    # random design. Pending + overflow must be folded in, never lost.
    new_layout = random_layout(rng, names, domains)
    store.relayout("T", new_layout)
    assert store.table("T").overflow_row_count == 0
    check_ground_truth(store, expected)
    scan_names = list(store.table("T").scan_schema().names())
    for query, predicate in queries:
        if _query_valid(query, predicate, scan_names):
            run_query_all_paths(store, query, predicate, vector_flip)

    # Mid-stream reorganization #2: the adaptive loop itself (forced check
    # against the workload the queries above were observed into).
    store.adapt("T")
    check_ground_truth(store, expected)
    scan_names = list(store.table("T").scan_schema().names())
    for query, predicate in queries:
        if _query_valid(query, predicate, scan_names):
            run_query_all_paths(store, query, predicate, vector_flip)

    # Deterministic teardown: joins any parallel-scan workers the
    # iteration spawned so threads never accumulate across fuzz cases.
    store.close()


# ---------------------------------------------------------------------------
# levelled (LSM) layouts: interleaved inserts/deletes/compactions
# ---------------------------------------------------------------------------


def random_run_design(
    rng: random.Random, names: list[str], domains: list[int]
) -> str:
    """A random non-lossy *run* design for ``levels[...]`` to wrap —
    any flat family (partitions cannot nest inside a levelled table)."""
    inner = random_layout(rng, names, domains)
    while inner.startswith("partition"):
        inner = random_layout(rng, names, domains)
    return inner


@pytest.mark.parametrize("iteration", range(max(4, FUZZ_ITERATIONS // 2)))
def test_fuzz_levelled_equivalence(iteration: int):
    """Levelled layouts under an interleaved insert/delete/compact stream.

    Random ``levels[k; ratio](inner)`` designs over random run designs;
    after every mutation batch the multiset ground truth and the full
    batch ≡ reference ≡ planner equivalence must hold — including while
    the manifest holds many runs, straight after partial merges, and
    before/after an explicit full ``compact()``.
    """
    rng = random.Random(FUZZ_SEED + 7_000 + iteration)
    schema, domains = random_schema(rng)
    names = list(schema.names())

    k = rng.randint(2, 4)
    ratio = rng.randint(2, 4)
    inner = random_run_design(rng, names, domains)
    layout = f"levels[{k}; {ratio}]({inner})"
    store = RodentStore(
        page_size=rng.choice([512, 1024, 4096]),
        pool_capacity=64,
        level_seal_rows=rng.choice([16, 32, 64]),
    )
    store.create_table("T", schema, layout=layout)

    expected = random_records(rng, domains, rng.randint(60, 150))
    store.load("T", expected)
    vector_flip = bool(iteration % 2)

    def reference_delete(predicate) -> list[tuple]:
        """Apply ``predicate`` to the model the way the store sees rows:
        projected to the scan schema's field order."""
        table = store.table("T")
        scan_names = table.scan_schema().names()
        logical_names = table.logical_schema.names()
        idx = [logical_names.index(n) for n in scan_names]
        positions = {n: i for i, n in enumerate(scan_names)}
        return [
            rec
            for rec in expected
            if not predicate.matches(
                tuple(rec[i] for i in idx), positions
            )
        ]

    def check_round() -> None:
        check_ground_truth(store, expected)
        scan_names = list(store.table("T").scan_schema().names())
        query = random_query(rng, scan_names)
        predicate = random_predicate(rng, names, domains)
        if _query_valid(query, predicate, scan_names):
            run_query_all_paths(store, query, predicate, vector_flip)

    for _ in range(rng.randint(4, 7)):
        op = rng.random()
        if op < 0.55:
            batch = random_records(rng, domains, rng.randint(10, 80))
            store.table("T").insert(batch)
            expected = expected + batch
        elif op < 0.75:
            predicate = random_predicate(rng, names, domains)
            if predicate is None:
                continue
            keep = reference_delete(predicate)
            removed = store.table("T").delete(predicate)
            assert removed == len(expected) - len(keep), (
                f"delete removed {removed}, model expected "
                f"{len(expected) - len(keep)} (layout={layout})"
            )
            expected = keep
        elif op < 0.9:
            store.table("T").flush_inserts()  # force a seal mid-stream
        else:
            store.table("T").compact()
            assert store.table("T").run_count <= 1
        check_round()

    # The acceptance gate proper: full equivalence immediately before
    # and after an explicit full compaction.
    queries = [
        (random_query(rng, list(store.table("T").scan_schema().names())),
         random_predicate(rng, names, domains))
        for _ in range(QUERIES_PER_SCENARIO)
    ]
    for query, predicate in queries:
        run_query_all_paths(store, query, predicate, vector_flip)
    store.table("T").compact()
    assert store.table("T").run_count <= 1
    check_ground_truth(store, expected)
    for query, predicate in queries:
        run_query_all_paths(store, query, predicate, vector_flip)
    store.close()


def _query_valid(
    query: dict, predicate, scan_names: list[str]
) -> bool:
    """Field references must exist in the (possibly re-ordered) new scan
    schema; all our layouts are non-lossy so this is always true, but keep
    the guard so a future lossy scenario fails loudly in one place."""
    used = set(query["fieldlist"] or [])
    if query["order"]:
        used |= {n for n, _ in query["order"]}
    if predicate is not None:
        used |= predicate.fields_used()
    return used <= set(scan_names)
