"""Tests for repro.index.btree (model-based + hypothesis)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.index.btree import BPlusTree
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.types import STRING


def make_tree(order=None, key_type=None, page_size=1024, capacity=256):
    disk = DiskManager(page_size=page_size)
    pool = BufferPool(disk, capacity=capacity)
    kwargs = {"order": order}
    if key_type is not None:
        kwargs["key_type"] = key_type
    return BPlusTree(pool, **kwargs), disk


class TestBasics:
    def test_empty_tree(self):
        tree, _ = make_tree()
        assert len(tree) == 0
        assert tree.search(5) == []
        assert list(tree.items()) == []
        assert list(tree.range(0, 100)) == []

    def test_insert_and_search(self):
        tree, _ = make_tree(order=4)
        for k in [5, 3, 8, 1, 9]:
            tree.insert(k, k * 10)
        assert tree.search(8) == [80]
        assert tree.search(42) == []

    def test_duplicates(self):
        tree, _ = make_tree(order=4)
        for v in range(5):
            tree.insert(7, v)
        assert sorted(tree.search(7)) == [0, 1, 2, 3, 4]

    def test_duplicates_across_leaf_boundary(self):
        tree, _ = make_tree(order=4)
        for v in range(20):
            tree.insert(7, v)
        tree.insert(6, -1)
        tree.insert(8, -2)
        assert sorted(tree.search(7)) == list(range(20))

    def test_items_sorted(self):
        tree, _ = make_tree(order=4)
        keys = random.Random(3).sample(range(1000), 200)
        for k in keys:
            tree.insert(k, k)
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_range_inclusive(self):
        tree, _ = make_tree(order=4)
        for k in range(100):
            tree.insert(k, k)
        got = [k for k, _ in tree.range(10, 20)]
        assert got == list(range(10, 21))

    def test_range_outside_keys(self):
        tree, _ = make_tree(order=4)
        tree.insert(5, 5)
        assert list(tree.range(10, 20)) == []
        assert [k for k, _ in tree.range(-5, 100)] == [5]

    def test_height_grows(self):
        tree, _ = make_tree(order=4)
        for k in range(200):
            tree.insert(k, k)
        assert tree.height >= 3

    def test_string_keys(self):
        tree, _ = make_tree(order=4, key_type=STRING)
        words = ["pear", "apple", "fig", "mango", "kiwi"]
        for w in words:
            tree.insert(w, len(w))
        assert [k for k, _ in tree.items()] == sorted(words)
        assert tree.search("fig") == [3]

    def test_min_order_enforced(self):
        with pytest.raises(IndexError_):
            make_tree(order=2)


class TestDelete:
    def test_delete_key(self):
        tree, _ = make_tree(order=4)
        for k in range(50):
            tree.insert(k, k)
        assert tree.delete(25) == 1
        assert tree.search(25) == []
        assert len(tree) == 49

    def test_delete_specific_value(self):
        tree, _ = make_tree(order=4)
        tree.insert(7, 1)
        tree.insert(7, 2)
        assert tree.delete(7, value=1) == 1
        assert tree.search(7) == [2]

    def test_delete_missing(self):
        tree, _ = make_tree(order=4)
        tree.insert(1, 1)
        assert tree.delete(99) == 0

    def test_delete_duplicates_across_leaves(self):
        tree, _ = make_tree(order=4)
        for v in range(30):
            tree.insert(5, v)
        assert tree.delete(5) == 30
        assert tree.search(5) == []


class TestBulkLoad:
    def test_bulk_load_matches_inserts(self):
        pairs = [(k * 3 % 101, k) for k in range(150)]
        bulk, _ = make_tree(order=8)
        bulk.bulk_load(pairs)
        incremental, _ = make_tree(order=8)
        for k, v in pairs:
            incremental.insert(k, v)
        assert sorted(bulk.items()) == sorted(incremental.items())

    def test_bulk_load_empty(self):
        tree, _ = make_tree(order=4)
        tree.bulk_load([])
        assert list(tree.items()) == []

    def test_bulk_load_searchable(self):
        tree, _ = make_tree(order=8)
        tree.bulk_load([(k, k * 2) for k in range(500)])
        assert tree.search(123) == [246]
        assert [k for k, _ in tree.range(10, 15)] == [10, 11, 12, 13, 14, 15]


class TestPageBacked:
    def test_probes_read_pages(self):
        tree, disk = make_tree(order=8)
        tree.bulk_load([(k, k) for k in range(2000)])
        tree.pool.clear()
        disk.stats.reset()
        tree.search(999)
        # One page per level (plus at most one next-leaf peek when the key
        # sits at a leaf boundary), through the pool -> disk reads counted.
        assert tree.height <= disk.stats.page_reads <= tree.height + 1

    def test_survives_pool_eviction(self):
        # Tiny pool forces every node access through disk.
        disk = DiskManager(page_size=1024)
        pool = BufferPool(disk, capacity=3)
        tree = BPlusTree(pool, order=8)
        for k in range(300):
            tree.insert(k, k)
        assert [k for k, _ in tree.items()] == list(range(300))


class TestModelBased:
    @given(
        st.lists(
            st.tuples(st.integers(0, 200), st.integers(0, 10**6)),
            max_size=150,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_against_sorted_model(self, pairs):
        tree, _ = make_tree(order=5)
        for k, v in pairs:
            tree.insert(k, v)
        assert sorted(tree.items()) == sorted(pairs)
        model = sorted(pairs)
        for probe in (0, 50, 100, 200):
            assert sorted(tree.search(probe)) == sorted(
                v for k, v in model if k == probe
            )

    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=120),
        st.integers(0, 100),
        st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_range_against_model(self, keys, lo, hi):
        tree, _ = make_tree(order=5)
        for k in keys:
            tree.insert(k, k)
        lo, hi = min(lo, hi), max(lo, hi)
        got = sorted(k for k, _ in tree.range(lo, hi))
        want = sorted(k for k in keys if lo <= k <= hi)
        assert got == want

    @given(
        st.lists(st.integers(0, 60), min_size=1, max_size=80),
        st.lists(st.integers(0, 60), max_size=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_insert_delete_model(self, inserts, deletes):
        tree, _ = make_tree(order=5)
        model: list[tuple[int, int]] = []
        for k in inserts:
            tree.insert(k, k)
            model.append((k, k))
        for k in deletes:
            removed = tree.delete(k)
            expected = len([1 for mk, _ in model if mk == k])
            assert removed == expected
            model = [(mk, mv) for mk, mv in model if mk != k]
        assert sorted(tree.items()) == sorted(model)
