"""Tests for repro.index.rtree (brute-force comparison + hypothesis)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.index.rtree import MBR, RTree
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager


def make_rtree(max_entries=8, page_size=1024, capacity=512):
    disk = DiskManager(page_size=page_size)
    pool = BufferPool(disk, capacity=capacity)
    return RTree(pool, max_entries=max_entries), disk


def random_boxes(n, seed=0, span=100.0, max_side=5.0):
    rng = random.Random(seed)
    boxes = []
    for i in range(n):
        x = rng.uniform(0, span)
        y = rng.uniform(0, span)
        boxes.append(
            (MBR(x, y, x + rng.uniform(0, max_side), y + rng.uniform(0, max_side)), i)
        )
    return boxes


class TestMBR:
    def test_validation(self):
        with pytest.raises(IndexError_):
            MBR(1, 0, 0, 1)

    def test_area_union(self):
        a = MBR(0, 0, 2, 2)
        b = MBR(1, 1, 3, 3)
        assert a.area() == 4
        assert a.union(b) == MBR(0, 0, 3, 3)
        assert a.enlargement(b) == 9 - 4

    def test_intersects(self):
        a = MBR(0, 0, 2, 2)
        assert a.intersects(MBR(1, 1, 3, 3))
        assert a.intersects(MBR(2, 2, 3, 3))  # touching counts
        assert not a.intersects(MBR(2.1, 0, 3, 1))

    def test_contains_point(self):
        a = MBR(0, 0, 2, 2)
        assert a.contains_point(1, 1)
        assert a.contains_point(0, 2)
        assert not a.contains_point(3, 1)

    def test_of_points(self):
        box = MBR.of_points([(1, 5), (3, 2), (2, 9)])
        assert box == MBR(1, 2, 3, 9)


class TestInsertSearch:
    def test_matches_brute_force(self):
        rt, _ = make_rtree()
        boxes = random_boxes(400, seed=1)
        for box, payload in boxes:
            rt.insert(box, payload)
        for qseed in range(5):
            rng = random.Random(100 + qseed)
            x, y = rng.uniform(0, 80), rng.uniform(0, 80)
            query = MBR(x, y, x + 15, y + 15)
            got = sorted(p for _, p in rt.search(query))
            want = sorted(p for b, p in boxes if b.intersects(query))
            assert got == want

    def test_point_entries(self):
        rt, _ = make_rtree()
        for i in range(100):
            rt.insert(MBR(i, i, i, i), i)
        got = sorted(p for _, p in rt.search(MBR(10, 10, 20, 20)))
        assert got == list(range(10, 21))

    def test_empty_tree_search(self):
        rt, _ = make_rtree()
        assert rt.search(MBR(0, 0, 10, 10)) == []

    def test_size_and_height(self):
        rt, _ = make_rtree(max_entries=4)
        for box, payload in random_boxes(100, seed=2):
            rt.insert(box, payload)
        assert len(rt) == 100
        assert rt.height >= 3

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_insert_search_randomized(self, seed):
        rt, _ = make_rtree(max_entries=5)
        boxes = random_boxes(60, seed=seed)
        for box, payload in boxes:
            rt.insert(box, payload)
        query = MBR(25, 25, 60, 60)
        got = sorted(p for _, p in rt.search(query))
        want = sorted(p for b, p in boxes if b.intersects(query))
        assert got == want


class TestBulkLoad:
    def test_str_matches_brute_force(self):
        rt, _ = make_rtree(max_entries=8)
        boxes = random_boxes(500, seed=3)
        rt.bulk_load(boxes)
        query = MBR(40, 40, 55, 55)
        got = sorted(p for _, p in rt.search(query))
        want = sorted(p for b, p in boxes if b.intersects(query))
        assert got == want

    def test_str_empty(self):
        rt, _ = make_rtree()
        rt.bulk_load([])
        assert len(rt) == 0

    def test_str_prunes_small_queries(self):
        """A point-sized query on an STR-packed tree must visit only a small
        fraction of the nodes — the directory actually prunes."""
        boxes = random_boxes(600, seed=4)
        bulk, disk_b = make_rtree(max_entries=8)
        bulk.bulk_load(boxes)
        total_nodes = disk_b.num_pages
        touched = bulk.node_pages_touched(MBR(50, 50, 51, 51))
        assert touched < total_nodes * 0.15

    def test_node_pages_touched(self):
        rt, _ = make_rtree(max_entries=8)
        rt.bulk_load(random_boxes(300, seed=5))
        small = rt.node_pages_touched(MBR(0, 0, 5, 5))
        large = rt.node_pages_touched(MBR(0, 0, 100, 100))
        assert 1 <= small <= large


class TestOverlapBehaviour:
    def test_overlapping_mbrs_inflate_page_touches(self):
        """The paper's Figure 2 observation: heavily overlapping boxes force
        many node visits even for small queries."""
        # Non-overlapping tiling vs heavily overlapped boxes.
        tiles = []
        i = 0
        for x in range(10):
            for y in range(10):
                tiles.append((MBR(x * 10, y * 10, x * 10 + 9, y * 10 + 9), i))
                i += 1
        rng = random.Random(6)
        overlapped = []
        for i in range(100):
            x, y = rng.uniform(0, 40), rng.uniform(0, 40)
            overlapped.append((MBR(x, y, x + 60, y + 60), i))

        rt_tiles, _ = make_rtree(max_entries=8)
        rt_tiles.bulk_load(tiles)
        rt_over, _ = make_rtree(max_entries=8)
        rt_over.bulk_load(overlapped)

        query = MBR(42, 42, 52, 52)
        hits_tiles = len(rt_tiles.search(query))
        hits_over = len(rt_over.search(query))
        assert hits_over > hits_tiles * 3


class TestPersistence:
    def test_nodes_survive_pool_eviction(self):
        disk = DiskManager(page_size=1024)
        pool = BufferPool(disk, capacity=3)
        rt = RTree(pool, max_entries=6)
        boxes = random_boxes(120, seed=7)
        for box, payload in boxes:
            rt.insert(box, payload)
        query = MBR(0, 0, 100, 100)
        assert len(rt.search(query)) == 120
