"""Tests for repro.engine.indexes (secondary B+Tree and R-Tree access paths)."""

import pytest

from repro.engine.database import RodentStore
from repro.engine.indexes import fetch_rows_by_position, pages_for_positions
from repro.errors import IndexError_, QueryError
from repro.query.expressions import Range, Rect
from repro.types import Schema

SCHEMA = Schema.of("t:int", "lat:int", "lon:int", "id:int")
RECORDS = [(i, (i * 37) % 1000, (i * 53) % 1000, i % 7) for i in range(1500)]


@pytest.fixture
def setup():
    store = RodentStore(page_size=1024, pool_capacity=256)
    store.create_table("T", SCHEMA)
    table = store.load("T", RECORDS)
    return store, table


class TestFieldIndex:
    def test_index_scan_matches_full_scan(self, setup):
        store, table = setup
        table.create_index("lat")
        predicate = Range("lat", 100, 150)
        got = sorted(table.scan(predicate=predicate))
        want = sorted(r for r in RECORDS if 100 <= r[1] <= 150)
        assert got == want

    def test_index_scan_reads_fewer_pages(self, setup):
        store, table = setup
        q = Range("lat", 100, 120)
        _, io_full = store.run_cold(lambda: list(table.scan(predicate=q)))
        table.create_index("lat")
        _, io_index = store.run_cold(lambda: list(table.scan(predicate=q)))
        assert io_index.page_reads < io_full.page_reads

    def test_unselective_range_falls_back(self, setup):
        store, table = setup
        table.create_index("lat")
        # Nearly the whole table: index should NOT be used.
        q = Range("lat", 0, 990)
        _, io = store.run_cold(lambda: list(table.scan(predicate=q)))
        assert io.page_reads <= table.layout.total_pages() + 2

    def test_unbounded_range_not_indexed(self, setup):
        _, table = setup
        table.create_index("lat")
        assert table._index_positions(Range("lat", lo=100)) is None

    def test_projection_over_index_path(self, setup):
        _, table = setup
        table.create_index("lat")
        got = sorted(table.scan(fieldlist=["t"], predicate=Range("lat", 0, 50)))
        want = sorted((r[0],) for r in RECORDS if r[1] <= 50)
        assert got == want

    def test_unknown_field(self, setup):
        _, table = setup
        with pytest.raises(QueryError):
            table.create_index("bogus")

    def test_requires_rows_layout(self, setup):
        store, _ = setup
        store.create_table("C", SCHEMA, layout="columns(C)")
        ctable = store.load("C", RECORDS)
        with pytest.raises(IndexError_):
            ctable.create_index("lat")

    def test_insert_marks_stale(self, setup):
        _, table = setup
        index = table.create_index("lat")
        table.insert([RECORDS[0]])
        assert index.stale
        # Stale index is bypassed; scan still correct.
        got = sorted(table.scan(predicate=Range("lat", 0, 50)))
        want = sorted(
            r for r in RECORDS + [RECORDS[0]] if r[1] <= 50
        )
        assert got == want

    def test_rebuild_clears_stale(self, setup):
        _, table = setup
        table.create_index("lat")
        table.insert([RECORDS[0]])
        table.flush_inserts()
        table.compact()
        index = table.create_index("lat")
        assert not index.stale
        assert table._index_positions(Range("lat", 0, 10)) is not None

    def test_load_drops_indexes(self, setup):
        store, table = setup
        table.create_index("lat")
        store.load("T", RECORDS[:100])
        assert store.catalog.entry("T").indexes == {}

    def test_drop_index(self, setup):
        _, table = setup
        table.create_index("lat")
        table.drop_index("lat")
        assert table._index_positions(Range("lat", 0, 10)) is None

    def test_scan_cost_considers_index(self, setup):
        _, table = setup
        full = table.scan_cost(predicate=Range("lat", 100, 110))
        table.create_index("lat")
        indexed = table.scan_cost(predicate=Range("lat", 100, 110))
        assert indexed.ms <= full.ms


class TestSpatialIndex:
    def test_spatial_scan_matches_full(self, setup):
        store, table = setup
        table.create_spatial_index("lat", "lon")
        q = Rect({"lat": (100, 200), "lon": (300, 400)})
        got = sorted(table.scan(predicate=q))
        want = sorted(
            r
            for r in RECORDS
            if 100 <= r[1] <= 200 and 300 <= r[2] <= 400
        )
        assert got == want

    def test_spatial_scan_reads_fewer_pages(self, setup):
        store, table = setup
        q = Rect({"lat": (100, 160), "lon": (300, 360)})
        _, io_full = store.run_cold(lambda: list(table.scan(predicate=q)))
        table.create_spatial_index("lat", "lon")
        _, io_index = store.run_cold(lambda: list(table.scan(predicate=q)))
        assert io_index.page_reads < io_full.page_reads

    def test_partial_box_not_used(self, setup):
        _, table = setup
        table.create_spatial_index("lat", "lon")
        # Only one of the two dimensions bounded: spatial index skipped.
        assert table._index_positions(Range("lat", 0, 10)) is None

    def test_stale_after_insert(self, setup):
        _, table = setup
        index = table.create_spatial_index("lat", "lon")
        table.insert([RECORDS[0]])
        assert index.stale


class TestPositionHelpers:
    def test_fetch_rows_by_position(self, setup):
        _, table = setup
        positions = [0, 1, 5, 700, 1499]
        got = list(fetch_rows_by_position(table, positions))
        assert got == [RECORDS[p] for p in positions]

    def test_fetch_out_of_range(self, setup):
        _, table = setup
        with pytest.raises(QueryError):
            list(fetch_rows_by_position(table, [len(RECORDS)]))

    def test_pages_for_positions(self, setup):
        _, table = setup
        # All positions on the first page -> 1 page.
        first_page_rows = table.layout.page_row_counts[0]
        assert pages_for_positions(table, list(range(first_page_rows))) == 1
        assert pages_for_positions(table, [0, len(RECORDS) - 1]) == 2

    def test_shared_page_fetched_once(self, setup):
        store, table = setup
        first_page_rows = table.layout.page_row_counts[0]
        positions = list(range(min(5, first_page_rows)))
        store.pool.clear()
        store.disk.stats.reset()
        list(fetch_rows_by_position(table, positions))
        assert store.disk.stats.page_reads == 1
