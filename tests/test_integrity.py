"""End-to-end data integrity: checksums, fault injection, repair, scrub."""

from __future__ import annotations

import json
import os
import struct

import pytest

from repro.engine.database import RodentStore
from repro.errors import (
    CorruptCatalogError,
    CorruptPageError,
    CorruptWALError,
    StorageError,
)
from repro.storage.disk import DiskManager
from repro.storage.faults import FaultInjector, IoFault, IoFaultInjector
from repro.storage.integrity import (
    PAGE_TRAILER_SIZE,
    TRAILER_MAGIC,
    checksum,
    make_trailer,
    verify_frame,
)
from repro.storage.wal import KIND_ROWS, WriteAheadLog
from repro.types import Schema

SCHEMA = Schema.of("id:int", "val:int")


def make_store(tmp_path, name="db", **kw):
    kw.setdefault("page_size", 1024)
    kw.setdefault("pool_capacity", 64)
    kw.setdefault("durable", True)
    return RodentStore(str(tmp_path / name), **kw)


def flip_byte(path, offset, mask=0x01):
    with open(path, "r+b") as f:
        f.seek(offset)
        b = f.read(1)
        f.seek(offset)
        f.write(bytes([b[0] ^ mask]))


# ---------------------------------------------------------------------------
# frame trailer primitives
# ---------------------------------------------------------------------------


class TestTrailer:
    def test_roundtrip(self):
        data = bytes(range(256)) * 4
        frame = data + make_trailer(data)
        ok, reason = verify_frame(frame, len(data))
        assert ok and not reason

    def test_short_frame(self):
        data = b"x" * 128
        frame = (data + make_trailer(data))[:-1]
        ok, reason = verify_frame(frame, 128)
        assert not ok and "short" in reason

    def test_bad_magic(self):
        data = b"y" * 128
        trailer = struct.pack("<IIII", TRAILER_MAGIC ^ 1, 1, checksum(data), 0)
        ok, reason = verify_frame(data + trailer, 128)
        assert not ok and "magic" in reason

    def test_bad_version(self):
        data = b"z" * 128
        trailer = struct.pack("<IIII", TRAILER_MAGIC, 99, checksum(data), 0)
        ok, reason = verify_frame(data + trailer, 128)
        assert not ok and "version" in reason

    def test_crc_mismatch(self):
        data = bytearray(b"w" * 128)
        frame = bytes(data) + make_trailer(bytes(data))
        data[5] ^= 0x10
        ok, reason = verify_frame(bytes(data) + frame[128:], 128)
        assert not ok and "checksum" in reason


# ---------------------------------------------------------------------------
# DiskManager: checksummed frames, faults, double free, fsync on close
# ---------------------------------------------------------------------------


class TestDiskIntegrity:
    def test_frame_layout_on_disk(self, tmp_path):
        path = str(tmp_path / "p.pages")
        disk = DiskManager(page_size=512, path=path)
        pid = disk.allocate_page()
        disk.write_page(pid, b"a" * 512)
        disk.fsync()
        size = os.path.getsize(path)
        assert size == 512 + PAGE_TRAILER_SIZE
        frame = open(path, "rb").read()
        ok, _ = verify_frame(frame, 512)
        assert ok
        disk.close()

    def test_bitflip_detected_and_quarantined(self, tmp_path):
        path = str(tmp_path / "p.pages")
        disk = DiskManager(page_size=512, path=path)
        pid = disk.allocate_page()
        disk.write_page(pid, b"a" * 512)
        disk.fsync()
        flip_byte(path, 10)
        with pytest.raises(CorruptPageError) as err:
            disk.read_page(pid)
        assert err.value.page_id == pid
        assert pid in disk.integrity.quarantined
        assert disk.integrity.page_failures == 1
        disk.close()

    def test_short_read_is_corruption(self, tmp_path):
        path = str(tmp_path / "p.pages")
        disk = DiskManager(page_size=512, path=path)
        pid = disk.allocate_page()
        disk.write_page(pid, b"b" * 512)
        disk.fsync()
        with open(path, "r+b") as f:
            f.truncate(100)  # tear the frame mid-write
        with pytest.raises(CorruptPageError) as err:
            disk.read_page(pid)
        assert "short" in err.value.reason
        disk.close()

    def test_unchecked_read_allows_torn_frames(self, tmp_path):
        # Recovery replays WAL images over possibly-torn pages; the
        # unchecked path must not raise on them.
        path = str(tmp_path / "p.pages")
        disk = DiskManager(page_size=512, path=path)
        pid = disk.allocate_page()
        disk.write_page(pid, b"c" * 512)
        disk.fsync()
        flip_byte(path, 10)
        data = disk.read_page_unchecked(pid)
        assert len(data) == 512
        disk.close()

    def test_double_free_guard(self, tmp_path):
        disk = DiskManager(page_size=512)
        pid = disk.allocate_page()
        disk.free_page(pid)
        with pytest.raises(StorageError, match="double free"):
            disk.free_page(pid)
        # reallocation clears the guard
        again = disk.allocate_page()
        assert again == pid
        disk.free_page(again)

    def test_transient_eio_retried(self, tmp_path):
        path = str(tmp_path / "p.pages")
        disk = DiskManager(page_size=512, path=path)
        pid = disk.allocate_page()
        disk.write_page(pid, b"d" * 512)
        disk.fsync()
        disk.io_faults = IoFaultInjector(IoFault("eio", target="page", count=2))
        assert bytes(disk.read_page(pid)) == b"d" * 512
        assert disk.integrity.transient_retries == 2

    def test_persistent_eio_fails(self, tmp_path):
        path = str(tmp_path / "p.pages")
        disk = DiskManager(page_size=512, path=path, max_read_retries=2)
        pid = disk.allocate_page()
        disk.write_page(pid, b"e" * 512)
        disk.fsync()
        disk.io_faults = IoFaultInjector(IoFault("eio", target="page", count=99))
        with pytest.raises(StorageError):
            disk.read_page(pid)

    def test_inflight_bitflip_healed_by_reread(self, tmp_path):
        path = str(tmp_path / "p.pages")
        disk = DiskManager(page_size=512, path=path)
        pid = disk.allocate_page()
        disk.write_page(pid, b"f" * 512)
        disk.fsync()
        disk.io_faults = IoFaultInjector(IoFault("bitflip", target="page", count=1))
        assert bytes(disk.read_page(pid)) == b"f" * 512
        assert disk.integrity.reread_recoveries == 1
        assert disk.integrity.page_failures == 0

    def test_enospc_on_write(self, tmp_path):
        path = str(tmp_path / "p.pages")
        disk = DiskManager(page_size=512, path=path)
        pid = disk.allocate_page()
        disk.io_faults = IoFaultInjector(IoFault("enospc", target="page"))
        with pytest.raises(StorageError, match="ENOSPC"):
            disk.write_page(pid, b"g" * 512)

    def test_lost_write_leaves_old_data(self, tmp_path):
        path = str(tmp_path / "p.pages")
        disk = DiskManager(page_size=512, path=path)
        pid = disk.allocate_page()
        disk.write_page(pid, b"h" * 512)
        disk.fsync()
        disk.io_faults = IoFaultInjector(IoFault("stale", target="page"))
        disk.write_page(pid, b"i" * 512)  # silently dropped by the device
        disk.fsync()
        # The stale page is checksum-valid (it is a real old page): the
        # injector log is the ground truth that the write was lost.
        assert ("write", "page", "stale", pid) in disk.io_faults.log
        assert bytes(disk.read_page(pid)) == b"h" * 512

    def test_close_fsyncs_file_backend(self, tmp_path, monkeypatch):
        path = str(tmp_path / "p.pages")
        disk = DiskManager(page_size=512, path=path)
        pid = disk.allocate_page()
        disk.write_page(pid, b"j" * 512)
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: calls.append(fd) or real_fsync(fd))
        disk.close()
        assert calls, "close() must fsync an open file backend"

    def test_close_skips_fsync_under_fsync_fault(self, tmp_path, monkeypatch):
        path = str(tmp_path / "p.pages")
        disk = DiskManager(page_size=512, path=path)
        disk.faults = FaultInjector(crash_after=1 << 62, fail_fsync=True)
        calls = []
        monkeypatch.setattr(os, "fsync", lambda fd: calls.append(fd))
        disk.close()
        assert not calls

    def test_checksums_off_skips_verification(self, tmp_path):
        path = str(tmp_path / "p.pages")
        disk = DiskManager(page_size=512, path=path)
        pid = disk.allocate_page()
        disk.write_page(pid, b"k" * 512)
        disk.fsync()
        flip_byte(path, 10)
        disk.close()
        reopened = DiskManager(page_size=512, path=path, verify_checksums=False)
        data = reopened.read_page(pid)  # no raise
        assert len(data) == 512
        reopened.close()


class TestLegacyMigration:
    def test_trailerless_file_migrated_in_place(self, tmp_path):
        path = str(tmp_path / "p.pages")
        pages = [bytes([i]) * 512 for i in range(4)]
        with open(path, "wb") as f:
            f.write(b"".join(pages))
        disk = DiskManager(page_size=512, path=path)
        assert disk.migrated_pages == 4
        for i, page in enumerate(pages):
            assert bytes(disk.read_page(i)) == page
        disk.close()
        assert os.path.getsize(path) == 4 * (512 + PAGE_TRAILER_SIZE)
        # second open: already framed, no re-migration
        disk = DiskManager(page_size=512, path=path)
        assert disk.migrated_pages == 0
        disk.close()

    def test_unrecognized_size_rejected(self, tmp_path):
        path = str(tmp_path / "p.pages")
        with open(path, "wb") as f:
            f.write(b"x" * 777)
        with pytest.raises(StorageError, match="neither"):
            DiskManager(page_size=512, path=path)


# ---------------------------------------------------------------------------
# WAL record checksums
# ---------------------------------------------------------------------------


class TestWALIntegrity:
    def _wal_with_records(self, tmp_path, n=8, name="w.wal"):
        wal = WriteAheadLog(str(tmp_path / name))
        for i in range(n):
            wal.append(KIND_ROWS, txn_id=1, payload=bytes([i]) * 40)
        wal.sync()
        return wal

    def test_roundtrip(self, tmp_path):
        wal = self._wal_with_records(tmp_path)
        recs = list(wal.records())
        assert len(recs) == 8
        assert [r.lsn for r in recs] == list(range(1, 9))
        wal.close()

    def test_midlog_flip_detected(self, tmp_path):
        wal = self._wal_with_records(tmp_path)
        path = wal.path
        wal.close()
        flip_byte(path, 30)  # inside the first record's payload
        # Detected already at open (the LSN recount walks the log)...
        with pytest.raises(CorruptWALError):
            WriteAheadLog(path)
        # ...and by records() on a handle opened before the rot set in.
        wal = self._wal_with_records(tmp_path, name="w2.wal")
        flip_byte(wal.path, 30)
        with pytest.raises(CorruptWALError):
            list(wal.records())
        wal.close()

    def test_torn_tail_still_tolerated(self, tmp_path):
        wal = self._wal_with_records(tmp_path)
        path = wal.path
        size = os.path.getsize(path)
        wal.close()
        with open(path, "r+b") as f:
            f.truncate(size - 7)
        wal = WriteAheadLog(path)
        recs = list(wal.records())  # no raise: last record simply dropped
        assert len(recs) == 7
        wal.close()

    def test_lost_append_detected_as_lsn_gap(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "w.wal"))
        wal.append(KIND_ROWS, txn_id=1, payload=b"a" * 16)
        wal.io_faults = IoFaultInjector(IoFault("stale", target="wal", count=1))
        wal.append(KIND_ROWS, txn_id=1, payload=b"b" * 16)  # dropped
        wal.append(KIND_ROWS, txn_id=1, payload=b"c" * 16)
        wal.sync()
        with pytest.raises(CorruptWALError, match="gap"):
            list(wal.records())
        wal.close()

    def test_wal_read_eio_retried(self, tmp_path):
        wal = self._wal_with_records(tmp_path)
        wal.io_faults = IoFaultInjector(IoFault("eio", target="wal", count=1))
        assert len(list(wal.records())) == 8
        wal.close()


# ---------------------------------------------------------------------------
# catalog checksum
# ---------------------------------------------------------------------------


class TestCatalogIntegrity:
    def _persisted(self, tmp_path):
        store = make_store(tmp_path)
        store.create_table("T", SCHEMA, layout="columns(T)")
        store.load("T", [(i, i * 3) for i in range(80)])
        store.checkpoint()
        store.close()
        return str(tmp_path / "db.catalog.json")

    def test_tampered_catalog_rejected(self, tmp_path):
        cat = self._persisted(tmp_path)
        text = open(cat).read()
        open(cat, "w").write(text.replace('"val"', '"vol"', 1))
        with pytest.raises(CorruptCatalogError, match="checksum"):
            make_store(tmp_path)

    def test_truncated_catalog_rejected(self, tmp_path):
        cat = self._persisted(tmp_path)
        text = open(cat).read()
        open(cat, "w").write(text[: len(text) // 2])
        with pytest.raises(CorruptCatalogError):
            make_store(tmp_path)

    def test_legacy_catalog_without_crc_accepted(self, tmp_path):
        cat = self._persisted(tmp_path)
        payload = json.load(open(cat))
        payload.pop("crc32")
        json.dump(payload, open(cat, "w"))
        store = make_store(tmp_path)
        assert len(list(store.table("T").scan())) == 80
        store.close()

    def test_crc_refreshed_on_save(self, tmp_path):
        cat = self._persisted(tmp_path)
        first = json.load(open(cat))["crc32"]
        store = make_store(tmp_path)
        store.create_table("U", SCHEMA)
        store.checkpoint()
        store.close()
        second = json.load(open(cat))["crc32"]
        assert first != second
        make_store(tmp_path).close()  # still loads


# ---------------------------------------------------------------------------
# repair ladder, degraded reads, scrub (engine level)
# ---------------------------------------------------------------------------


def _corrupt_first_table_page(store, path):
    """Flip a byte inside the first page referenced by table T."""
    entry = store.catalog.entry("T")
    layouts = store._entry_layouts(entry)
    pid = min(min(l.page_ids()) for l in layouts if l.page_ids())
    frame_size = store.disk.frame_size
    flip_byte(path, pid * frame_size + 20)
    return pid


class TestRepairAndDegradedReads:
    def test_repair_from_wal_after_image(self, tmp_path):
        store = make_store(tmp_path)
        store.create_table("T", SCHEMA, layout="columns(T)")
        store.load("T", [(i, i * 2) for i in range(300)])
        store.pool.flush_all()
        store.wal.sync()
        path = str(tmp_path / "db")
        store.pool.clear()
        pid = _corrupt_first_table_page(store, path)
        rows = sorted(store.table("T").scan())
        assert rows == [(i, i * 2) for i in range(300)]
        assert store.integrity.page_repairs == 1
        assert pid not in store.integrity.quarantined
        # repaired page was rewritten: cold read is clean again
        store.pool.clear()
        store.disk.read_page(pid)
        store.close()

    def test_unrepairable_fails_loudly_by_default(self, tmp_path):
        store = make_store(tmp_path)
        store.create_table("T", SCHEMA, layout="columns(T)")
        store.load("T", [(i, i) for i in range(300)])
        store.checkpoint()  # truncates the WAL: no after-images left
        path = str(tmp_path / "db")
        store.pool.clear()
        _corrupt_first_table_page(store, path)
        with pytest.raises(CorruptPageError):
            list(store.table("T").scan())
        store.close()

    def test_degraded_reads_skip_with_report(self, tmp_path):
        store = make_store(tmp_path, degraded_reads=True)
        store.create_table("T", SCHEMA, layout="columns(T)")
        store.load("T", [(i, i) for i in range(300)])
        store.checkpoint()
        path = str(tmp_path / "db")
        store.pool.clear()
        pid = _corrupt_first_table_page(store, path)
        rows = list(store.table("T").scan())
        assert len(rows) < 300  # corrupt unit skipped, never wrong rows
        events = store.catalog.entry("T").last_corruption_skipped
        assert len(events) == 1
        assert events[0]["page_id"] == pid
        assert events[0]["table"] == "T"
        stats = store.storage_stats()["integrity"]
        assert stats["scan_skips"] == 1
        assert stats["degraded_reads"] is True
        store.close()

    def test_degraded_scan_report_in_explain(self, tmp_path):
        store = make_store(tmp_path, degraded_reads=True)
        store.create_table("T", SCHEMA, layout="rows(T)")
        store.load("T", [(i, i) for i in range(300)])
        store.checkpoint()
        store.pool.clear()
        _corrupt_first_table_page(store, str(tmp_path / "db"))
        q = store.query("T")
        q.run()
        assert "corruption_skipped=1" in str(q.explain())
        store.close()

    def test_partitioned_degraded_scan_skips_one_region(self, tmp_path):
        store = make_store(tmp_path, degraded_reads=True)
        store.create_table(
            "T", SCHEMA, layout="partition[id; range, 128](T)"
        )
        store.load("T", [(i, i) for i in range(512)])
        store.checkpoint()
        store.pool.clear()
        _corrupt_first_table_page(store, str(tmp_path / "db"))
        rows = list(store.table("T").scan())
        # other partitions survive: strictly between 0 and all rows
        assert 0 < len(rows) < 512
        events = store.catalog.entry("T").last_corruption_skipped
        assert len(events) == 1
        assert events[0]["unit"].startswith("partition[")
        store.close()


class TestScrub:
    def test_clean_store_scrubs_clean(self, tmp_path):
        store = make_store(tmp_path)
        store.create_table("T", SCHEMA, layout="columns(T)")
        store.load("T", [(i, i * 7) for i in range(400)])
        store.table("T").insert([(1000 + i, i) for i in range(20)])
        store.relayout("T", "partition[id; range, 256](T)")
        report = store.scrub()
        assert report["clean"] is True
        assert report["unrepairable"] == []
        assert report["pages_failed"] == 0
        assert report["wal_ok"] and report["catalog_ok"]
        assert report["pages_checked"] > 0
        assert report["synopsis_mismatches"] == []
        assert report["partition_mismatches"] == []
        assert report["row_count_mismatches"] == []
        stats = store.storage_stats()["integrity"]
        assert stats["scrubs"] == 1
        store.close()

    def test_scrub_detects_and_repairs_with_wal(self, tmp_path):
        store = make_store(tmp_path)
        store.create_table("T", SCHEMA, layout="columns(T)")
        store.load("T", [(i, i) for i in range(300)])
        store.pool.flush_all()
        store.wal.sync()
        store.pool.clear()
        _corrupt_first_table_page(store, str(tmp_path / "db"))
        report = store.scrub(repair=True)
        assert report["clean"] is True  # repaired from the WAL image
        assert report["pages_repaired"] == 1
        assert store.integrity.page_repairs == 1
        store.close()

    def test_scrub_reports_unrepairable(self, tmp_path):
        store = make_store(tmp_path)
        store.create_table("T", SCHEMA, layout="columns(T)")
        store.load("T", [(i, i) for i in range(300)])
        store.checkpoint()
        store.pool.clear()
        pid = _corrupt_first_table_page(store, str(tmp_path / "db"))
        report = store.scrub(repair=True)
        assert report["clean"] is False
        assert any(f["page_id"] == pid for f in report["unrepairable"])
        store.close()

    def test_scrub_flags_corrupt_wal(self, tmp_path):
        store = make_store(tmp_path)
        store.create_table("T", SCHEMA)
        store.load("T", [(i, i) for i in range(50)])
        store.wal.sync()
        flip_byte(str(tmp_path / "db.wal"), 40)
        report = store.scrub()
        assert report["wal_ok"] is False
        assert report["clean"] is False
        store.close()

    def test_memory_store_scrubs_clean(self):
        store = RodentStore(page_size=1024, pool_capacity=64)
        store.create_table("T", SCHEMA, layout="rows(T)")
        store.load("T", [(i, i) for i in range(100)])
        report = store.scrub()
        assert report["clean"] is True


class TestIntegrityStats:
    def test_storage_stats_exposes_integrity(self, tmp_path):
        store = make_store(tmp_path)
        store.create_table("T", SCHEMA)
        store.load("T", [(i, i) for i in range(100)])
        store.pool.flush_all()
        store.pool.clear()
        list(store.table("T").scan())
        list(store.wal.records())  # verifies every record CRC
        stats = store.storage_stats()["integrity"]
        assert stats["checksums"] is True
        assert stats["page_verifications"] > 0
        assert stats["wal_records_verified"] > 0
        assert stats["catalog_verifications"] >= 0
        assert stats["page_failures"] == 0
        assert stats["quarantined"] == {}
        store.close()

    def test_checksums_off_store(self, tmp_path):
        store = make_store(tmp_path, checksums=False)
        store.create_table("T", SCHEMA)
        store.load("T", [(i, i) for i in range(100)])
        store.checkpoint()
        store.pool.clear()
        assert len(list(store.table("T").scan())) == 100
        stats = store.storage_stats()["integrity"]
        assert stats["checksums"] is False
        assert stats["page_verifications"] == 0
        store.close()
