"""Tests for repro.algebra.interpreter (expression -> physical plan)."""

import pytest

from repro.algebra import ast
from repro.algebra.interpreter import AlgebraInterpreter, transform_script
from repro.algebra.parser import parse
from repro.algebra.physical import (
    LAYOUT_ARRAY,
    LAYOUT_COLUMNS,
    LAYOUT_FOLDED,
    LAYOUT_GRID,
    LAYOUT_MIRROR,
    LAYOUT_ROWS,
)
from repro.errors import TypeCheckError
from repro.types import Schema

SCHEMA = Schema.of("t:int", "lat:int", "lon:int", "id:int")


@pytest.fixture
def interp():
    return AlgebraInterpreter({"T": SCHEMA})


class TestCompile:
    def test_rows_plan(self, interp):
        plan = interp.compile("T")
        assert plan.kind == LAYOUT_ROWS
        assert plan.schema == SCHEMA
        assert plan.sort_keys == ()

    def test_accepts_ast(self, interp):
        plan = interp.compile(ast.table("T"))
        assert plan.kind == LAYOUT_ROWS

    def test_orderby_sort_keys(self, interp):
        plan = interp.compile("orderby[t ASC, id DESC](T)")
        assert plan.sort_keys == (("t", True), ("id", False))

    def test_columns_plan(self, interp):
        plan = interp.compile("columns[[t], [lat, lon], [id]](T)")
        assert plan.kind == LAYOUT_COLUMNS
        assert plan.column_groups == (("t",), ("lat", "lon"), ("id",))

    def test_columns_default_groups(self, interp):
        plan = interp.compile("columns(T)")
        assert plan.column_groups == (("t",), ("lat",), ("lon",), ("id",))

    def test_grid_plan(self, interp):
        plan = interp.compile("zorder(grid[lat, lon],[100, 50](T))")
        assert plan.kind == LAYOUT_GRID
        assert plan.grid.dims == ("lat", "lon")
        assert plan.grid.strides == (100.0, 50.0)
        assert plan.grid.cell_order == "zorder"

    def test_grid_rowmajor_default(self, interp):
        plan = interp.compile("grid[lat, lon],[100, 50](T)")
        assert plan.grid.cell_order == "rowmajor"

    def test_hilbert_cell_order(self, interp):
        plan = interp.compile("hilbert(grid[lat, lon],[10, 10](T))")
        assert plan.grid.cell_order == "hilbert"

    def test_delta_and_codecs(self, interp):
        plan = interp.compile(
            "compress[varint; lat, lon](delta[lat, lon]("
            "zorder(grid[lat, lon],[10, 10](T))))"
        )
        assert plan.delta_fields == ("lat", "lon")
        assert plan.codec_for("lat") == "varint"
        assert plan.codec_for("t") == "none"

    def test_whole_table_codec(self, interp):
        plan = interp.compile("compress[lz](T)")
        assert plan.codec_for("t") == "lz"
        assert plan.codec_for("lat") == "lz"

    def test_field_codec_beats_default(self, interp):
        plan = interp.compile("compress[varint; t](compress[lz](T))")
        assert plan.codec_for("t") == "varint"
        assert plan.codec_for("lat") == "lz"

    def test_folded_plan(self, interp):
        plan = interp.compile("fold[lat, lon; id](T)")
        assert plan.kind == LAYOUT_FOLDED
        assert plan.group_fields == ("id",)
        assert plan.nest_fields == ("lat", "lon")

    def test_mirror_plan(self, interp):
        plan = interp.compile("mirror(rows(T), columns(T))")
        assert plan.kind == LAYOUT_MIRROR
        assert len(plan.mirror_plans) == 2
        assert plan.mirror_plans[0].kind == LAYOUT_ROWS
        assert plan.mirror_plans[1].kind == LAYOUT_COLUMNS

    def test_array_plan(self, interp):
        plan = interp.compile("transpose([[1, 2], [3, 4]])")
        assert plan.kind == LAYOUT_ARRAY

    def test_normalizes_before_compiling(self, interp):
        plan = interp.compile("transpose(transpose(T))")
        assert plan.kind == LAYOUT_ROWS  # collapsed to T

    def test_type_errors_surface(self, interp):
        with pytest.raises(TypeCheckError):
            interp.compile("grid[bogus],[1](T)")

    def test_describe_mentions_key_facts(self, interp):
        plan = interp.compile(
            "compress[varint; lat](delta[lat](zorder(grid[lat, lon],[10, 10](T))))"
        )
        text = plan.describe()
        assert "grid" in text
        assert "zorder" in text
        assert "delta=lat" in text
        assert "varint" in text


class TestTransformScript:
    def test_fresh_table(self, interp):
        plan = interp.compile("T")
        steps = transform_script(None, plan)
        actions = [s.action for s in steps]
        assert actions == ["materialize", "swap"]

    def test_replacing_layout(self, interp):
        old = interp.compile("T")
        new = interp.compile("columns(T)")
        steps = transform_script(old, new)
        actions = [s.action for s in steps]
        assert "drop" in actions and "materialize" in actions

    def test_matching_order_noted(self, interp):
        old = interp.compile("orderby[t](T)")
        new = interp.compile("orderby[t](columns(T))")
        # Same record-level sort on both sides.
        old2 = interp.compile("orderby[t](T)")
        steps = transform_script(old, old2)
        assert steps[0].action == "note"
