"""Property: every physical design of a table answers queries identically.

The central promise of the paper — "RodentStore supports a wide range of
physical structures ... while still exposing logical tables" — stated as a
hypothesis property: for random records and any supported layout expression,
``scan`` returns the same multiset of records (modulo declared projections),
and predicates filter identically.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.database import RodentStore
from repro.query.expressions import Range, Rect
from repro.types import Schema

SCHEMA = Schema.of("t:int", "x:int", "y:int", "g:int")

records_strategy = st.lists(
    st.tuples(
        st.integers(0, 10_000),
        st.integers(-100, 100),
        st.integers(-100, 100),
        st.integers(0, 5),
    ),
    min_size=1,
    max_size=120,
)

# Layouts that preserve every field (so scans are directly comparable).
FULL_LAYOUTS = [
    "T",
    "orderby[t](T)",
    "orderby[g DESC, t ASC](T)",
    "columns(T)",
    "columns[[t, g], [x, y]](T)",
    "grid[x, y],[25, 25](T)",
    "zorder(grid[x, y],[40, 40](T))",
    "hilbert(grid[x, y],[40, 40](T))",
    "delta[x, y](grid[x, y],[25, 25](T))",
    "compress[varint; x, y](delta[x, y](zorder(grid[x, y],[25, 25](T))))",
    "compress[lz](columns(T))",
    "fold[t, x, y; g](T)",
    "mirror(rows(T), columns(T))",
    "groupby[g](T)",
    "partition[r.g](T)",
]


def build(layout, records):
    store = RodentStore(page_size=1024, pool_capacity=64)
    store.create_table("T", SCHEMA, layout=layout)
    return store, store.load("T", records)


def canonical(rows, fields):
    """Project rows to SCHEMA order for comparison across layouts."""
    index = {f: i for i, f in enumerate(fields)}
    order = [index[f] for f in SCHEMA.names()]
    return sorted(tuple(r[i] for i in order) for r in rows)


@pytest.mark.parametrize("layout", FULL_LAYOUTS)
@given(records=records_strategy)
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_scan_multiset_invariant(layout, records):
    _, table = build(layout, records)
    fields = table.scan_schema().names()
    got = canonical(table.scan(), fields)
    assert got == sorted(map(tuple, records))


@pytest.mark.parametrize(
    "layout",
    [
        "T",
        "orderby[x](T)",
        "columns(T)",
        "zorder(grid[x, y],[25, 25](T))",
        "fold[t, y; g](T)",  # note: x not stored first => predicate on x
        "mirror(rows(T), columns(T))",
    ],
)
@given(records=records_strategy, data=st.data())
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_predicate_invariant(layout, records, data):
    lo = data.draw(st.integers(-100, 100))
    hi = data.draw(st.integers(lo, 100))
    _, table = build(layout, records)
    fields = table.scan_schema().names()
    if "x" not in fields:
        return
    predicate = Range("x", lo, hi)
    got = canonical(table.scan(predicate=predicate), fields) if set(
        fields
    ) == set(SCHEMA.names()) else None
    if got is None:
        return
    want = sorted(tuple(r) for r in records if lo <= r[1] <= hi)
    assert got == want


@given(records=records_strategy, data=st.data())
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_grid_rect_query_equals_row_filter(records, data):
    """Grid-pruned rectangle queries equal the brute-force row filter."""
    x_lo = data.draw(st.integers(-100, 100))
    x_hi = data.draw(st.integers(x_lo, 100))
    y_lo = data.draw(st.integers(-100, 100))
    y_hi = data.draw(st.integers(y_lo, 100))
    rect = Rect({"x": (x_lo, x_hi), "y": (y_lo, y_hi)})

    _, rows_table = build("T", records)
    _, grid_table = build(
        "compress[varint; x, y](delta[x, y](zorder(grid[x, y],[30, 30](T))))",
        records,
    )
    want = sorted(rows_table.scan(predicate=rect))
    got = sorted(grid_table.scan(predicate=rect))
    assert got == want


@given(records=records_strategy)
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_insert_then_scan_matches_bulk_load(records):
    """Loading everything at once equals loading half and inserting half."""
    half = len(records) // 2
    _, bulk = build("T", records)
    store, incremental = build("T", records[:half] or [records[0]])
    if half:
        incremental.insert(records[half:])
        incremental.flush_inserts()
        expected = sorted(map(tuple, records))
    else:
        expected = sorted(map(tuple, [records[0]]))
    assert sorted(incremental.scan()) == expected or not half
