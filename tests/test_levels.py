"""Levelled (LSM) storage combinator: ``levels[k; ratio](inner)``.

Covers the full surface of the levelled physical design:

* algebra — parse/round-trip/validation of ``levels`` (with and without a
  merge key), outermost-only placement;
* mechanics — seal-on-threshold, size-tiered merges that respect the
  fan-out, laminar level structure (a merge never interleaves sequence
  ranges), immutable runs;
* semantics — multiset vs keyed last-writer-wins resolution, tombstoned
  deletes that survive merges only while an older run remains, updates;
* the incremental pending-zone synopsis (regression: interleaved
  insert/delete must never leave the zone stale — a stale-narrow zone
  would wrongly prune pending rows);
* write-amplification accounting in ``storage_stats()``;
* persistence — a durable store reopens with the identical level
  structure, tombstones, and sequence counters;
* adaptation — the controller's read-heavy merge and run-design re-choice
  triggers;
* background compaction on the shared worker pool.
"""

import os
import random
import shutil
import tempfile
import time

import pytest

from repro.algebra import ast
from repro.algebra.parser import parse
from repro.engine.database import RodentStore
from repro.errors import AlgebraError
from repro.query.expressions import Range
from repro.types import Schema

SCHEMA = Schema.of("id:int", "v:int")


def make_store(**kwargs):
    kwargs.setdefault("page_size", 1024)
    kwargs.setdefault("level_seal_rows", 32)
    return RodentStore(**kwargs)


# ---------------------------------------------------------------------------
# algebra
# ---------------------------------------------------------------------------


def test_levels_parse_roundtrip():
    for text in (
        "levels[4; 4](rows(T))",
        "levels[2; 8](columns(T))",
        "levels[3; 2; r.id](orderby[id](T))",
    ):
        node = parse(text)
        assert isinstance(node, ast.Levels)
        assert parse(node.to_text()).to_text() == node.to_text()


def test_levels_builder_and_bounds():
    node = ast.levels(ast.table("T"), k=2, ratio=2)
    assert node.k == 2 and node.ratio == 2 and node.key is None
    with pytest.raises(AlgebraError):
        ast.Levels(ast.table("T"), k=1, ratio=4)
    with pytest.raises(AlgebraError):
        ast.Levels(ast.table("T"), k=4, ratio=65)


def test_levels_must_be_outermost():
    store = make_store()
    with pytest.raises(AlgebraError):
        store.create_table(
            "T", SCHEMA, layout="columns(levels[2; 2](T))"
        )
    store.close()


# ---------------------------------------------------------------------------
# seal / merge mechanics
# ---------------------------------------------------------------------------


def test_seal_on_threshold_and_fanout_merge():
    store = make_store(level_seal_rows=10)
    store.create_table("T", SCHEMA, layout="levels[2; 2](rows(T))")
    t = store.table("T")
    # One batch under the threshold stays pending; reaching it seals.
    t.insert([(i, i) for i in range(9)])
    assert t.run_count == 0
    t.insert([(9, 9)])
    assert t.run_count == 1
    # A second seal reaches fan-out k=2 at level 0 and triggers a merge
    # into level 1 — the laminar invariant: partial merges promote by
    # exactly one level, never past it.
    t.insert([(10 + i, i) for i in range(10)])
    entry = store.catalog.entry("T")
    assert [r.level for r in entry.runs] == [1]
    assert sorted(t.scan()) == sorted(t.scan_reference())
    assert t.row_count == 20
    store.close()


def test_runs_are_immutable_and_sorted_by_seq():
    store = make_store(level_seal_rows=5)
    store.create_table("T", SCHEMA, layout="levels[8; 2](rows(T))")
    t = store.table("T")
    for b in range(4):
        t.insert([(b * 5 + i, b) for i in range(5)])
    entry = store.catalog.entry("T")
    assert len(entry.runs) == 4
    seqs = [r.max_seq for r in entry.runs]
    assert seqs == sorted(seqs)  # manifest oldest-first
    rids = {r.rid for r in entry.runs}
    assert len(rids) == 4
    store.close()


def test_full_compaction_single_run():
    store = make_store(level_seal_rows=8)
    store.create_table("T", SCHEMA, layout="levels[3; 2](rows(T))")
    t = store.table("T")
    rows = [(i, i * 7) for i in range(60)]
    for i in range(0, 60, 8):
        t.insert(rows[i : i + 8])
    t.insert([(100, 1)])  # leave something pending too
    t.compact()
    entry = store.catalog.entry("T")
    assert t.run_count == 1
    assert entry.pending == [] and entry.level_tombstones == []
    assert sorted(t.scan()) == sorted(rows + [(100, 1)])
    store.close()


# ---------------------------------------------------------------------------
# multiset + keyed semantics, tombstones
# ---------------------------------------------------------------------------


def test_multiset_delete_tombstones_until_merge():
    store = make_store(level_seal_rows=10)
    store.create_table("T", SCHEMA, layout="levels[8; 2](rows(T))")
    t = store.table("T")
    for b in range(3):
        t.insert([(b * 10 + i, b) for i in range(10)])
    entry = store.catalog.entry("T")
    n = t.delete(Range("id", 5, 14))  # straddles two sealed runs
    assert n == 10
    assert entry.level_tombstones, "sealed rows need tombstones"
    expected = sorted((i, i // 10) for i in range(30) if not 5 <= i <= 14)
    assert sorted(t.scan()) == expected
    assert sorted(t.scan_reference()) == expected
    t.compact()
    # A full merge applies every tombstone physically and drops them all.
    assert entry.level_tombstones == []
    assert sorted(t.scan()) == expected
    store.close()


def test_keyed_upsert_last_writer_wins():
    store = make_store(level_seal_rows=6)
    store.create_table(
        "K", Schema.of("k:int", "x:int"),
        layout="levels[2; 2; r.k](rows(K))",
    )
    kt = store.table("K")
    rng = random.Random(11)
    truth: dict[int, int] = {}
    for _ in range(12):
        batch = [(rng.randrange(20), rng.randrange(999)) for _ in range(6)]
        for k, x in batch:
            truth[k] = x
        kt.insert(batch)
        assert sorted(kt.scan()) == sorted(truth.items())
        assert sorted(kt.scan_reference()) == sorted(truth.items())
    kt.compact()
    assert kt.run_count == 1
    assert sorted(kt.scan()) == sorted(truth.items())
    # Upserting after the merge still shadows the merged copy.
    kt.insert([(0, -5)])
    truth[0] = -5
    assert sorted(kt.scan()) == sorted(truth.items())
    store.close()


def test_keyed_delete_kills_all_versions():
    store = make_store(level_seal_rows=4)
    store.create_table(
        "K", Schema.of("k:int", "x:int"),
        layout="levels[8; 2; r.k](rows(K))",
    )
    kt = store.table("K")
    for version in range(3):  # same keys re-upserted across three runs
        kt.insert([(k, version) for k in range(4)])
    assert kt.delete(Range("k", 1, 2)) == 2
    assert sorted(kt.scan()) == [(0, 2), (3, 2)]
    kt.compact()
    assert sorted(kt.scan()) == [(0, 2), (3, 2)]
    # A post-delete upsert of a deleted key must resurrect it.
    kt.insert([(1, 99)] * 1)
    kt.flush_inserts()
    assert sorted(kt.scan()) == [(0, 2), (1, 99), (3, 2)]
    store.close()


def test_update_on_levelled_table():
    store = make_store(level_seal_rows=10)
    store.create_table("T", SCHEMA, layout="levels[4; 2](rows(T))")
    t = store.table("T")
    t.insert([(i, 0) for i in range(25)])
    n = t.update({"v": lambda r: r["id"] * 2}, Range("id", 10, 12))
    assert n == 3
    expected = sorted(
        (i, i * 2 if 10 <= i <= 12 else 0) for i in range(25)
    )
    assert sorted(t.scan()) == expected
    t.compact()
    assert sorted(t.scan()) == expected
    store.close()


def test_tombstone_gc_after_partial_merge():
    store = make_store(level_seal_rows=5)
    store.create_table("T", SCHEMA, layout="levels[2; 2](rows(T))")
    t = store.table("T")
    t.insert([(i, 0) for i in range(5)])       # run 1
    t.delete(Range("id", 0, 1))                 # tombstones vs run 1
    entry = store.catalog.entry("T")
    assert entry.level_tombstones
    # Two more seals force merges; once no run predates a tombstone it
    # must be garbage-collected from the manifest.
    t.insert([(10 + i, 0) for i in range(5)])
    t.insert([(20 + i, 0) for i in range(5)])
    t.compact()
    assert entry.level_tombstones == []
    assert sorted(t.scan()) == sorted(
        [(i, 0) for i in range(2, 5)]
        + [(10 + i, 0) for i in range(5)]
        + [(20 + i, 0) for i in range(5)]
    )
    store.close()


# ---------------------------------------------------------------------------
# pending-zone synopsis (regression: interleaved insert/delete)
# ---------------------------------------------------------------------------


def test_pending_zone_incremental_after_interleaved_insert_delete():
    """The pending-buffer zone is maintained incrementally and must stay a
    sound over-approximation of the buffer through any interleaving of
    inserts and deletes — a stale-narrow zone would make ``zone_may_match``
    prune live pending rows out of predicate scans."""
    store = make_store(level_seal_rows=10_000)  # never seals: all pending
    store.create_table("T", SCHEMA, layout="levels[4; 2](rows(T))")
    t = store.table("T")
    entry = store.catalog.entry("T")
    rng = random.Random(3)
    live: list[tuple] = []
    next_id = 0
    for step in range(30):
        if rng.random() < 0.6 or not live:
            batch = [
                (next_id + j, rng.randrange(1000)) for j in range(5)
            ]
            next_id += 5
            t.insert(batch)
            live.extend(batch)
        else:
            lo = rng.randrange(next_id)
            pred = Range("id", lo, lo + 7)
            t.delete(pred)
            live = [r for r in live if not lo <= r[0] <= lo + 7]
        # Soundness: every live pending row is covered by the zone, so a
        # point query for it can never be wrongly pruned.
        zone = entry.pending_zone
        if live:
            assert zone is not None
            for row in rng.sample(live, min(4, len(live))):
                assert sorted(
                    t.scan(predicate=Range("id", row[0], row[0]))
                ) == sorted(
                    r for r in live if r[0] == row[0]
                )
        assert sorted(t.scan()) == sorted(live)
        assert sorted(t.scan_reference()) == sorted(live)
    store.close()


def test_pending_zone_incremental_not_rebuilt_on_delete():
    """A delete folds only the update-produced rows into the existing
    zone (O(changes)); the object is reused, not rebuilt from scratch."""
    store = make_store(level_seal_rows=10_000)
    store.create_table("T", SCHEMA, layout="levels[4; 2](rows(T))")
    t = store.table("T")
    entry = store.catalog.entry("T")
    t.insert([(i, i) for i in range(50)])
    zone_before = entry.pending_zone
    assert zone_before is not None
    t.delete(Range("id", 40, 49))
    assert entry.pending_zone is zone_before  # maintained in place
    # ...and still covers every survivor (over-approximation is fine).
    fz = entry.pending_zone.fields["id"]
    assert fz.min_value <= 0 and fz.max_value >= 39
    assert sorted(t.scan()) == [(i, i) for i in range(40)]
    store.close()


def test_flush_inserts_seals_and_resets_pending_zone():
    store = make_store(level_seal_rows=10_000)
    store.create_table("T", SCHEMA, layout="levels[4; 2](rows(T))")
    t = store.table("T")
    entry = store.catalog.entry("T")
    t.insert([(i, i) for i in range(20)])
    assert entry.pending_zone is not None
    layout = t.flush_inserts()
    assert layout is not None and t.run_count == 1
    # The seal renders an exact per-run synopsis; the buffer zone resets
    # so post-flush bounds reflect only newly pending rows.
    assert entry.pending is not None and len(entry.pending) == 0
    assert entry.pending_zone is None
    t.insert([(1000, 1)])
    assert entry.pending_zone.fields["id"].min_value == 1000
    store.close()


# ---------------------------------------------------------------------------
# write amplification + stats
# ---------------------------------------------------------------------------


def test_storage_stats_write_amplification():
    store = make_store(level_seal_rows=8)
    store.create_table("T", SCHEMA, layout="levels[2; 2](rows(T))")
    t = store.table("T")
    for i in range(0, 64, 8):
        t.insert([(i + j, j) for j in range(8)])
    info = store.storage_stats()["tables"]["T"]
    assert info["levelled"] is True
    assert info["run_count"] == len(info["runs"])
    wa = info["write_amplification"]
    assert wa["bytes_ingested"] > 0
    # Merges rewrote pages beyond first ingest: amplification > 1.
    assert wa["bytes_written"] > wa["bytes_ingested"]
    assert wa["factor"] > 1.0
    assert wa["compactions"] >= 1
    assert wa["pages_rewritten_by_compaction"] > 0
    store.close()


# ---------------------------------------------------------------------------
# persistence: durable reopen preserves the level structure
# ---------------------------------------------------------------------------


def test_durable_reopen_preserves_levels():
    d = tempfile.mkdtemp()
    try:
        path = os.path.join(d, "db")
        store = RodentStore(
            path, page_size=1024, level_seal_rows=8, durable=True
        )
        store.create_table("T", SCHEMA, layout="levels[2; 2](rows(T))")
        t = store.table("T")
        rows = [(i, i) for i in range(40)]
        for i in range(0, 40, 8):
            t.insert(rows[i : i + 8])
        t.delete(Range("id", 0, 4))
        t.insert([(100, 100)])  # stays pending across the reopen
        entry = store.catalog.entry("T")
        manifest = [(r.rid, r.level, r.max_seq) for r in entry.runs]
        tombs = list(entry.level_tombstones)
        next_ids = (entry.next_run_id, entry.next_run_seq)
        expected = sorted(rows[5:] + [(100, 100)])
        assert sorted(t.scan()) == expected
        store.close()

        reopened = RodentStore(
            path, page_size=1024, level_seal_rows=8, durable=True
        )
        entry2 = reopened.catalog.entry("T")
        assert [
            (r.rid, r.level, r.max_seq) for r in entry2.runs
        ] == manifest
        assert list(entry2.level_tombstones) == tombs
        assert (entry2.next_run_id, entry2.next_run_seq) == next_ids
        t2 = reopened.table("T")
        assert sorted(t2.scan()) == expected
        assert sorted(t2.scan_reference()) == expected
        # The reopened store keeps ingesting and merging correctly.
        t2.insert([(200 + i, 0) for i in range(8)])
        assert sorted(t2.scan()) == sorted(
            expected + [(200 + i, 0) for i in range(8)]
        )
        reopened.close()
    finally:
        shutil.rmtree(d)


# ---------------------------------------------------------------------------
# adaptation
# ---------------------------------------------------------------------------


def test_adaptive_read_heavy_merge():
    store = make_store(level_seal_rows=8)
    store.create_table("T", SCHEMA, layout="levels[8; 2](rows(T))")
    t = store.table("T")
    for b in range(4):
        t.insert([(b * 8 + i, b) for i in range(8)])
    assert t.run_count == 4
    # Reads drain the decayed write load; the forced check must then fold
    # the fragmented manifest into one run (or re-choose the run design —
    # either way the store converges to a single run).
    for _ in range(30):
        list(t.scan(predicate=Range("id", 0, 31)))
    decision = store.adapt("T")
    assert decision["adapted"] is True
    assert t.run_count == 1
    assert sorted(t.scan()) == sorted((b * 8 + i, b) for b in range(4) for i in range(8))
    store.close()


def test_adaptive_holds_merge_while_ingest_hot():
    store = make_store(level_seal_rows=8, adaptive=True, adapt_interval=4)
    store.create_table("T", SCHEMA, layout="levels[8; 2](rows(T))")
    t = store.table("T")
    for b in range(3):
        t.insert([(b * 8 + i, b) for i in range(8)])
    list(t.scan())  # one observation; write load still dominates
    decision = store.adaptivity.check("T")
    assert decision["adapted"] is False
    assert t.run_count == 3  # background cadence owns the merge
    store.close()


# ---------------------------------------------------------------------------
# background compaction
# ---------------------------------------------------------------------------


def test_background_compaction_with_workers():
    store = make_store(level_seal_rows=16, scan_workers=3)
    store.create_table("T", SCHEMA, layout="levels[2; 2](rows(T))")
    t = store.table("T")
    rows = [(i, i) for i in range(400)]
    for i in range(0, 400, 16):
        t.insert(rows[i : i + 16])
        # Concurrent range queries while merges run in the background.
        got = sorted(t.scan(predicate=Range("id", 0, 7)))
        assert got == [(j, j) for j in range(8)]
    deadline = time.time() + 5.0
    while time.time() < deadline:
        entry = store.catalog.entry("T")
        counts: dict[int, int] = {}
        for r in entry.runs:
            counts[r.level] = counts.get(r.level, 0) + 1
        if all(c < 2 for c in counts.values()):
            break
        time.sleep(0.02)
    assert sorted(t.scan()) == rows
    assert sorted(t.scan_reference()) == rows
    store.close()  # joins any in-flight merge


def test_relayout_between_levelled_and_flat():
    store = make_store(level_seal_rows=8)
    store.create_table("T", SCHEMA, layout="levels[2; 2](rows(T))")
    t = store.table("T")
    rows = [(i, i) for i in range(30)]
    t.insert(rows)
    store.relayout("T", "columns(T)")
    t = store.table("T")
    assert not t.is_levelled
    assert sorted(t.scan()) == rows
    store.relayout("T", "levels[4; 4](columns(T))")
    t = store.table("T")
    assert t.is_levelled and t.run_count == 1
    assert sorted(t.scan()) == rows
    store.close()
