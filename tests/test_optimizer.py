"""Tests for repro.optimizer (workloads, costing, candidates, search)."""

import pytest

from repro.algebra import ast
from repro.algebra.interpreter import AlgebraInterpreter
from repro.algebra.parser import parse
from repro.engine.cost import CostModel
from repro.engine.database import RodentStore
from repro.engine.stats import TableStats
from repro.optimizer import (
    PlanCostEstimator,
    Query,
    Workload,
    affinity_column_groups,
    enumerate_candidates,
    exhaustive_search,
    greedy_stride_descent,
    recommend,
    recommend_for_table,
    simulated_annealing,
    suggest_stride,
)
from repro.query.expressions import Range, Rect
from repro.types import Schema

SCHEMA = Schema.of("t:int", "lat:int", "lon:int", "id:int", "extra:int")
RECORDS = [
    (i, (i * 37) % 1000, (i * 53) % 1000, i % 11, i * 7)
    for i in range(3000)
]
STATS = TableStats.collect(SCHEMA, RECORDS)
MODEL = CostModel(page_size=4096)


def spatial_workload(n=8):
    wl = Workload("T")
    for i in range(n):
        lo = (i * 97) % 800
        wl.add(
            Query(
                name=f"q{i}",
                fieldlist=("lat", "lon"),
                predicate=Rect(
                    {"lat": (lo, lo + 100), "lon": (lo, lo + 100)}
                ),
            )
        )
    return wl


def narrow_workload():
    wl = Workload("T")
    wl.add(Query(name="a", fieldlist=("t",)))
    wl.add(Query(name="b", fieldlist=("id",)))
    return wl


class TestWorkload:
    def test_fields_touched(self):
        q = Query(
            name="q",
            fieldlist=("lat",),
            predicate=Range("t", 0, 10),
            order=(("id", True),),
        )
        assert q.fields_touched(SCHEMA.names()) == {"lat", "t", "id"}

    def test_fields_touched_defaults_to_all(self):
        q = Query(name="q")
        assert q.fields_touched(SCHEMA.names()) == set(SCHEMA.names())

    def test_co_access_matrix(self):
        wl = Workload("T")
        wl.add(Query(name="a", fieldlist=("lat", "lon"), weight=3))
        wl.add(Query(name="b", fieldlist=("t",)))
        matrix = wl.co_access_matrix(SCHEMA.names())
        assert matrix[("lat", "lon")] == 3
        assert ("lat", "t") not in matrix

    def test_field_access_weights(self):
        wl = Workload("T")
        wl.add(Query(name="a", fieldlist=("lat",), weight=2))
        wl.add(Query(name="b", fieldlist=("lat", "t")))
        weights = wl.field_access_weights(SCHEMA.names())
        assert weights["lat"] == 3
        assert weights["t"] == 1
        assert weights["extra"] == 0

    def test_range_dimensions(self):
        wl = spatial_workload(3)
        dims = wl.range_dimensions()
        assert set(dims) == {"lat", "lon"}
        assert len(dims["lat"]) == 3


class TestPlanCostEstimator:
    def interp(self):
        return AlgebraInterpreter({"T": SCHEMA})

    def test_rows_full_scan_pages(self):
        estimator = PlanCostEstimator(STATS, MODEL, MODEL.page_size)
        plan = self.interp().compile("T")
        q = Query(name="q")
        cost = estimator.query_cost(plan, q)
        assert cost.pages == estimator.storage_pages(plan)

    def test_columns_narrow_cheaper(self):
        estimator = PlanCostEstimator(STATS, MODEL, MODEL.page_size)
        plan = self.interp().compile("columns(T)")
        narrow = estimator.query_cost(plan, Query(name="n", fieldlist=("t",)))
        wide = estimator.query_cost(plan, Query(name="w"))
        assert narrow.pages < wide.pages

    def test_grid_selective_cheaper_than_rows(self):
        estimator = PlanCostEstimator(STATS, MODEL, MODEL.page_size)
        rows_plan = self.interp().compile("T")
        grid_plan = self.interp().compile(
            "grid[lat, lon],[100, 100](project[lat, lon](T))"
        )
        q = spatial_workload(1).queries[0]
        assert (
            estimator.query_cost(grid_plan, q).pages
            < estimator.query_cost(rows_plan, q).pages
        )

    def test_zorder_reduces_predicted_seeks(self):
        estimator = PlanCostEstimator(STATS, MODEL, MODEL.page_size)
        plain = self.interp().compile(
            "grid[lat, lon],[50, 50](project[lat, lon](T))"
        )
        z = self.interp().compile(
            "zorder(grid[lat, lon],[50, 50](project[lat, lon](T)))"
        )
        q = spatial_workload(1).queries[0]
        assert (
            estimator.query_cost(z, q).seeks
            <= estimator.query_cost(plain, q).seeks
        )

    def test_compression_shrinks_storage(self):
        estimator = PlanCostEstimator(STATS, MODEL, MODEL.page_size)
        plain = self.interp().compile("project[lat, lon](T)")
        packed = self.interp().compile(
            "compress[varint; lat, lon](delta[lat, lon](zorder("
            "grid[lat, lon],[100, 100](project[lat, lon](T)))))"
        )
        assert estimator.storage_pages(packed) < estimator.storage_pages(plain)

    def test_workload_cost_weights(self):
        estimator = PlanCostEstimator(STATS, MODEL, MODEL.page_size)
        plan = self.interp().compile("T")
        wl = Workload("T")
        wl.add(Query(name="q", weight=10))
        heavy = estimator.workload_cost(plan, wl).total_ms
        wl2 = Workload("T")
        wl2.add(Query(name="q", weight=1))
        light = estimator.workload_cost(plan, wl2).total_ms
        assert heavy == pytest.approx(light * 10)

    def test_mirror_takes_min(self):
        estimator = PlanCostEstimator(STATS, MODEL, MODEL.page_size)
        mirror = self.interp().compile("mirror(rows(T), columns(T))")
        cols = self.interp().compile("columns(T)")
        q = Query(name="n", fieldlist=("t",))
        assert (
            estimator.query_cost(mirror, q).ms
            == estimator.query_cost(cols, q).ms
        )

    def test_sorted_rows_prune_with_leading_key_range(self):
        estimator = PlanCostEstimator(STATS, MODEL, MODEL.page_size)
        sorted_plan = self.interp().compile("orderby[lat](T)")
        q = Query(name="q", predicate=Range("lat", 0, 99))
        full = estimator.storage_pages(sorted_plan)
        assert estimator.query_cost(sorted_plan, q).pages < full

    def test_prediction_close_to_measured_for_columns(self):
        """The analytic estimator should land within 2x of measured I/O."""
        store = RodentStore(page_size=4096, pool_capacity=128)
        store.create_table("T", SCHEMA, layout="columns(T)")
        table = store.load("T", RECORDS)
        estimator = PlanCostEstimator(
            store.catalog.entry("T").stats, store.cost_model, 4096
        )
        predicted = estimator.query_cost(
            table.plan, Query(name="q", fieldlist=("t",))
        )
        _, io = store.run_cold(lambda: list(table.scan(fieldlist=["t"])))
        assert predicted.pages == pytest.approx(io.page_reads, rel=1.0)


class TestCandidates:
    def test_pool_contains_baseline_and_columns(self):
        candidates = enumerate_candidates(SCHEMA, STATS, spatial_workload())
        texts = [c.to_text() for c in candidates]
        assert "T" in texts
        assert any(t.startswith("columns") for t in texts)

    def test_spatial_workload_generates_grids(self):
        candidates = enumerate_candidates(SCHEMA, STATS, spatial_workload())
        kinds = {type(c).__name__ for c in candidates}
        assert "Grid" in kinds or any(
            isinstance(n, ast.Grid)
            for c in candidates
            for n in c.walk()
        )
        assert any(isinstance(c, ast.ZOrder) for c in candidates)
        assert any(isinstance(c, ast.Compress) for c in candidates)

    def test_grid_projects_untouched_fields(self):
        candidates = enumerate_candidates(SCHEMA, STATS, spatial_workload())
        grids = [
            c for c in candidates
            if any(isinstance(n, ast.Grid) for n in c.walk())
        ]
        assert grids
        # 'extra' is never touched by the workload: projected away.
        projected = [
            n for g in grids for n in g.walk() if isinstance(n, ast.Project)
        ]
        assert projected
        assert all("extra" not in p.fields for p in projected)

    def test_no_duplicates(self):
        candidates = enumerate_candidates(SCHEMA, STATS, spatial_workload())
        texts = [c.to_text() for c in candidates]
        assert len(texts) == len(set(texts))

    def test_mirror_opt_in(self):
        without = enumerate_candidates(SCHEMA, STATS, spatial_workload())
        with_m = enumerate_candidates(
            SCHEMA, STATS, spatial_workload(), include_mirrors=True
        )
        assert not any(isinstance(c, ast.Mirror) for c in without)
        assert any(isinstance(c, ast.Mirror) for c in with_m)

    def test_all_candidates_compile(self):
        interp = AlgebraInterpreter({"T": SCHEMA})
        for candidate in enumerate_candidates(SCHEMA, STATS, spatial_workload()):
            interp.compile(candidate)  # must not raise

    def test_affinity_groups_cluster_coaccessed(self):
        wl = Workload("T")
        wl.add(Query(name="a", fieldlist=("lat", "lon"), weight=10))
        wl.add(Query(name="b", fieldlist=("t",), weight=10))
        groups = affinity_column_groups(SCHEMA, wl)
        merged = [g for g in groups if set(g) >= {"lat", "lon"}]
        assert merged

    def test_affinity_no_workload(self):
        groups = affinity_column_groups(SCHEMA, Workload("T"))
        assert groups == [[f] for f in SCHEMA.names()]

    def test_suggest_stride_scales_with_queries(self):
        wl = spatial_workload()
        dims = wl.range_dimensions()
        stride = suggest_stride(STATS, dims, "lat")
        assert stride is not None
        # Queries span 100 units; ~2 cells per side -> stride ~50.
        assert 25 <= stride <= 100

    def test_suggest_stride_unknown_field(self):
        assert suggest_stride(STATS, {}, "nope") is None


class TestSearch:
    def setup_method(self):
        self.estimator = PlanCostEstimator(STATS, MODEL, MODEL.page_size)
        self.workload = spatial_workload()
        self.candidates = enumerate_candidates(SCHEMA, STATS, self.workload)

    def test_exhaustive_picks_grid_for_spatial(self):
        result = exhaustive_search(
            self.candidates, SCHEMA, self.estimator, self.workload
        )
        assert any(
            isinstance(n, ast.Grid) for n in result.expression.walk()
        )
        assert result.evaluated >= len(self.candidates) - 2

    def test_exhaustive_narrow_picks_columns(self):
        wl = narrow_workload()
        candidates = enumerate_candidates(SCHEMA, STATS, wl)
        result = exhaustive_search(candidates, SCHEMA, self.estimator, wl)
        assert isinstance(result.expression, ast.Columns)

    def test_greedy_descent_improves_or_keeps(self):
        seed = parse("grid[lat, lon],[500, 500](project[lat, lon](T))")
        start = exhaustive_search([seed], SCHEMA, self.estimator, self.workload)
        refined = greedy_stride_descent(
            seed, SCHEMA, self.estimator, self.workload
        )
        assert refined.best.total_ms <= start.best.total_ms

    def test_greedy_descent_trace_monotone(self):
        seed = parse("grid[lat, lon],[500, 500](project[lat, lon](T))")
        refined = greedy_stride_descent(
            seed, SCHEMA, self.estimator, self.workload
        )
        costs = [ms for _, ms in refined.trace]
        assert costs == sorted(costs, reverse=True)

    def test_annealing_not_worse_than_seed_pool_average(self):
        result = simulated_annealing(
            self.candidates, SCHEMA, self.estimator, self.workload,
            iterations=100, seed=3,
        )
        pool_costs = [
            exhaustive_search([c], SCHEMA, self.estimator, self.workload)
            .best.total_ms
            for c in self.candidates[:3]
        ]
        assert result.best.total_ms <= max(pool_costs)

    def test_annealing_deterministic_with_seed(self):
        a = simulated_annealing(
            self.candidates, SCHEMA, self.estimator, self.workload,
            iterations=50, seed=9,
        )
        b = simulated_annealing(
            self.candidates, SCHEMA, self.estimator, self.workload,
            iterations=50, seed=9,
        )
        assert a.best.plan.expr == b.best.plan.expr


class TestRecommend:
    def test_spatial_recommendation_is_compressed_grid(self):
        rec = recommend(SCHEMA, STATS, spatial_workload(), MODEL)
        ops = {type(n).__name__ for n in rec.expression.walk()}
        assert "Grid" in ops
        assert rec.predicted_ms > 0
        assert rec.alternatives

    def test_narrow_recommendation_is_columns(self):
        rec = recommend(SCHEMA, STATS, narrow_workload(), MODEL)
        assert isinstance(rec.expression, ast.Columns)

    def test_unknown_strategy(self):
        from repro.errors import OptimizerError

        with pytest.raises(OptimizerError):
            recommend(SCHEMA, STATS, narrow_workload(), MODEL, strategy="magic")

    def test_recommend_for_table_requires_stats(self):
        from repro.errors import OptimizerError

        store = RodentStore(page_size=1024)
        store.create_table("T", SCHEMA)
        with pytest.raises(OptimizerError):
            recommend_for_table(store, spatial_workload())

    def test_recommendation_beats_rows_when_applied(self):
        """End-to-end: applying the advice reduces measured pages/query."""
        store = RodentStore(page_size=4096, pool_capacity=128)
        store.create_table("T", SCHEMA)
        table = store.load("T", RECORDS)
        wl = spatial_workload(4)
        q = wl.queries[0]

        def run():
            return list(
                table.scan(fieldlist=["lat", "lon"], predicate=q.predicate)
            )

        baseline, io_before = store.run_cold(run)
        rec = recommend_for_table(store, wl)
        new_table = store.relayout("T", rec.expression, source_records=RECORDS)

        def run_new():
            return list(
                new_table.scan(fieldlist=["lat", "lon"], predicate=q.predicate)
            )

        improved, io_after = store.run_cold(run_new)
        assert sorted(improved) == sorted(baseline)
        assert io_after.page_reads < io_before.page_reads
