"""Tests for repro.storage.page (slotted pages, byte pages)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PageError
from repro.storage.page import (
    BYTES_HEADER_SIZE,
    NO_PAGE,
    PAGE_TYPE_BYTES,
    PAGE_TYPE_FREE,
    PAGE_TYPE_SLOTTED,
    BytePage,
    SlottedPage,
    page_type_of,
)


class TestSlottedPage:
    def test_insert_and_get(self):
        page = SlottedPage(512)
        s0 = page.insert(b"hello")
        s1 = page.insert(b"world!")
        assert page.get(s0) == b"hello"
        assert page.get(s1) == b"world!"
        assert page.slot_count == 2

    def test_records_in_order(self):
        page = SlottedPage(512)
        blobs = [b"a", b"bb", b"ccc"]
        for blob in blobs:
            page.insert(blob)
        assert [b for _, b in page.records()] == blobs

    def test_full_page_raises(self):
        page = SlottedPage(128)
        with pytest.raises(PageError):
            while True:
                page.insert(b"x" * 16)

    def test_can_fit_accounts_slot_entry(self):
        page = SlottedPage(256)
        free = page.free_space()
        assert page.can_fit(free)
        assert not page.can_fit(free + 1)
        page.insert(b"x" * free)
        assert page.free_space() == 0

    def test_delete_tombstones(self):
        page = SlottedPage(512)
        s0 = page.insert(b"a")
        s1 = page.insert(b"b")
        page.delete(s0)
        assert page.is_deleted(s0)
        assert [b for _, b in page.records()] == [b"b"]
        with pytest.raises(PageError):
            page.get(s0)
        with pytest.raises(PageError):
            page.delete(s0)

    def test_update_in_place(self):
        page = SlottedPage(512)
        s0 = page.insert(b"abcdef")
        new = page.update(s0, b"xyz")
        assert new == s0
        assert page.get(s0) == b"xyz"

    def test_update_grows_moves_slot(self):
        page = SlottedPage(512)
        s0 = page.insert(b"ab")
        page.insert(b"other")
        new = page.update(s0, b"longer than before")
        assert new != s0
        assert page.get(new) == b"longer than before"
        assert page.is_deleted(s0)

    def test_compact_reclaims(self):
        page = SlottedPage(512)
        for i in range(5):
            page.insert(bytes([65 + i]) * 10)
        page.delete(1)
        page.delete(3)
        free_before = page.free_space()
        page.compact()
        assert page.free_space() > free_before
        assert [b for _, b in page.records()] == [b"A" * 10, b"C" * 10, b"E" * 10]

    def test_bad_slot(self):
        page = SlottedPage(512)
        with pytest.raises(PageError):
            page.get(0)
        with pytest.raises(PageError):
            page.get(-1)

    def test_header_roundtrip_via_buffer(self):
        page = SlottedPage(512)
        page.insert(b"persisted")
        page.set_next_page_id(77)
        reloaded = SlottedPage(512, page.buffer)
        assert reloaded.next_page_id == 77
        assert reloaded.get(0) == b"persisted"

    def test_wrong_buffer_type_rejected(self):
        byte_page = BytePage(512)
        with pytest.raises(PageError):
            SlottedPage(512, byte_page.buffer)

    def test_buffer_size_mismatch(self):
        with pytest.raises(PageError):
            SlottedPage(512, bytearray(256))

    def test_too_small_page(self):
        with pytest.raises(PageError):
            SlottedPage(8)

    @given(st.lists(st.binary(min_size=1, max_size=40), max_size=20))
    def test_insert_get_property(self, blobs):
        page = SlottedPage(4096)
        slots = [page.insert(b) for b in blobs]
        for slot, blob in zip(slots, blobs):
            assert page.get(slot) == blob

    @given(
        st.lists(st.binary(min_size=1, max_size=30), min_size=1, max_size=15),
        st.data(),
    )
    def test_delete_subset_property(self, blobs, data):
        page = SlottedPage(4096)
        slots = [page.insert(b) for b in blobs]
        to_delete = data.draw(
            st.sets(st.sampled_from(slots)) if slots else st.just(set())
        )
        for slot in to_delete:
            page.delete(slot)
        survivors = [b for s, b in zip(slots, blobs) if s not in to_delete]
        assert [b for _, b in page.records()] == survivors


class TestBytePage:
    def test_write_read(self):
        page = BytePage(512)
        page.write(b"payload bytes")
        assert page.read() == b"payload bytes"

    def test_overwrite(self):
        page = BytePage(512)
        page.write(b"long first payload")
        page.write(b"short")
        assert page.read() == b"short"

    def test_capacity_enforced(self):
        page = BytePage(128)
        page.write(b"x" * page.capacity)
        with pytest.raises(PageError):
            page.write(b"x" * (page.capacity + 1))

    def test_empty_payload(self):
        page = BytePage(128)
        page.write(b"")
        assert page.read() == b""

    def test_next_page_chain(self):
        page = BytePage(128)
        page.set_next_page_id(3)
        reloaded = BytePage(128, page.buffer)
        assert reloaded.next_page_id == 3

    def test_fresh_page_has_no_next(self):
        assert BytePage(128).next_page_id == NO_PAGE

    @given(st.binary(max_size=100))
    def test_roundtrip_property(self, payload):
        page = BytePage(BYTES_HEADER_SIZE + 100)
        page.write(payload)
        assert page.read() == payload


class TestPageTypeOf:
    def test_detects_types(self):
        assert page_type_of(SlottedPage(128).buffer) == PAGE_TYPE_SLOTTED
        assert page_type_of(BytePage(128).buffer) == PAGE_TYPE_BYTES
        assert page_type_of(bytearray(128)) == PAGE_TYPE_FREE

    def test_short_buffer(self):
        with pytest.raises(PageError):
            page_type_of(b"\x01")
