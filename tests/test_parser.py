"""Tests for repro.algebra.parser (text syntax round-trips)."""

import pytest

from repro.algebra import ast
from repro.algebra.parser import parse, parse_condition
from repro.errors import ParseError


class TestBasicParsing:
    def test_table_ref(self):
        assert parse("Traces") == ast.TableRef("Traces")

    def test_paper_intro_example(self):
        expr = parse("zorder(grid[y, z](N))")
        assert isinstance(expr, ast.ZOrder)
        grid = expr.child
        assert isinstance(grid, ast.Grid)
        assert grid.dims == ("y", "z")
        assert grid.strides == (1.0, 1.0)  # default stride

    def test_grid_with_strides(self):
        expr = parse("grid[lat, lon],[0.01, 0.02](T)")
        assert expr.strides == (0.01, 0.02)

    def test_project(self):
        expr = parse("project[lat, lon](Traces)")
        assert expr == ast.project(["lat", "lon"], ast.table("Traces"))

    def test_fold_with_groups(self):
        expr = parse("fold[zip, addr; area](T)")
        assert expr.nest_fields == ("zip", "addr")
        assert expr.group_fields == ("area",)

    def test_prejoin_two_args(self):
        expr = parse("prejoin[k](A, B)")
        assert expr.join_attr == "k"
        assert expr.left == ast.table("A")

    def test_orderby_directions(self):
        expr = parse("orderby[t ASC, id DESC](T)")
        assert expr.keys == (
            ast.SortKey("t", True), ast.SortKey("id", False)
        )

    def test_orderby_default_asc(self):
        expr = parse("orderby[t](T)")
        assert expr.keys == (ast.SortKey("t", True),)

    def test_orderby_r_prefix(self):
        expr = parse("orderby[r.t asc](T)")
        assert expr.keys == (ast.SortKey("t", True),)

    def test_select_condition(self):
        expr = parse("select[r.area = 617](T)")
        assert isinstance(expr.condition, ast.Comparison)

    def test_append(self):
        expr = parse("append[total=r.price * r.qty](T)")
        name, scalar = expr.elements[0]
        assert name == "total"
        assert isinstance(scalar, ast.Arith)

    def test_compress_with_fields(self):
        expr = parse("compress[varint; lat, lon](T)")
        assert expr.codec == "varint"
        assert expr.fields == ("lat", "lon")

    def test_compress_without_fields(self):
        expr = parse("compress[lz](T)")
        assert expr.fields == ()

    def test_columns_with_groups(self):
        expr = parse("columns[[a, b], [c]](T)")
        assert expr.groups == (("a", "b"), ("c",))

    def test_columns_plain(self):
        assert parse("columns(T)").groups == ()

    def test_mirror(self):
        expr = parse("mirror(rows(T), columns(T))")
        assert isinstance(expr, ast.Mirror)

    def test_limit(self):
        assert parse("limit[10](T)").count == 10

    def test_chunk(self):
        assert parse("chunk[4, 8](T)").shape == (4, 8)

    def test_delta_variants(self):
        assert parse("delta(T)").fields == ()
        assert parse("delta[lat, lon](T)").fields == ("lat", "lon")

    def test_nested_composition(self):
        text = (
            "compress[varint; lat, lon](delta[lat, lon](zorder("
            "grid[lat, lon],[10, 10](project[lat, lon](T)))))"
        )
        expr = parse(text)
        ops = [type(n).__name__ for n in expr.walk()]
        assert ops == [
            "Compress", "Delta", "ZOrder", "Grid", "Project", "TableRef"
        ]

    def test_literal_nesting(self):
        expr = parse("[[1, 2, 3], [12, 13, 14]]")
        assert isinstance(expr, ast.Literal)
        assert expr.thaw() == [[1, 2, 3], [12, 13, 14]]

    def test_literal_with_negatives_and_strings(self):
        expr = parse("[[-1, 2.5], ['x', true]]")
        assert expr.thaw() == [[-1, 2.5], ["x", True]]

    def test_transpose_of_literal(self):
        expr = parse("transpose([[1, 2, 3], [4, 5, 6]])")
        assert isinstance(expr, ast.Transpose)


class TestConditions:
    def test_comparison_ops(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            cond = parse_condition(f"r.a {op} 5")
            assert cond.op == op

    def test_precedence_and_or(self):
        cond = parse_condition("a = 1 or b = 2 and c = 3")
        assert isinstance(cond, ast.Logical)
        assert cond.op == "or"
        assert cond.operands[1].op == "and"

    def test_parentheses(self):
        cond = parse_condition("(a = 1 or b = 2) and c = 3")
        assert cond.op == "and"

    def test_not(self):
        cond = parse_condition("not a = 1")
        assert cond.op == "not"

    def test_arithmetic_precedence(self):
        cond = parse_condition("a + b * 2 = 7")
        assert isinstance(cond.left, ast.Arith)
        assert cond.left.op == "+"
        assert cond.left.right.op == "*"

    def test_negative_number(self):
        cond = parse_condition("a > -5")
        assert cond.right == ast.Const(-5)

    def test_string_literal(self):
        cond = parse_condition("name = 'boston'")
        assert cond.right == ast.Const("boston")

    def test_booleans(self):
        cond = parse_condition("flag = true")
        assert cond.right == ast.Const(True)

    def test_float_with_exponent(self):
        cond = parse_condition("x < 1.5e3")
        assert cond.right == ast.Const(1500.0)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "project[](T)",
            "project[a](T",
            "grid[a],[1,2](T)",  # stride arity mismatch is an algebra error
            "zorder(T) extra",
            "fold[a](T)",  # missing group section
            "limit[1.5](T)",
            "select[r.a =](T)",
            "unknownop[x](T",
            "'unterminated",
            "project[a](T, U)",
        ],
    )
    def test_rejects(self, text):
        with pytest.raises(Exception):
            parse(text)

    def test_error_carries_position(self):
        try:
            parse("project[a](T,")
        except ParseError as exc:
            assert exc.position is not None


class TestRoundTrip:
    EXPRESSIONS = [
        "Traces",
        "project[lat, lon](T)",
        "select[r.a = 617](T)",
        "select[r.a > 1 and r.b < 2](T)",
        "partition[r.id](T)",
        "fold[zip, addr; area](T)",
        "unfold(fold[zip; area](T))",
        "prejoin[k](A, B)",
        "delta[lat, lon](T)",
        "delta(T)",
        "orderby[r.t ASC, r.id DESC](T)",
        "groupby[id, t](T)",
        "limit[3](T)",
        "zorder(grid[y, z],[1.0, 10.0](N))",
        "hilbert(grid[x, y],[2.0, 2.0](T))",
        "transpose(T)",
        "chunk[4, 4](T)",
        "compress[varint; lat](T)",
        "compress[lz](T)",
        "rows(T)",
        "columns(T)",
        "columns[[a, b], [c]](T)",
        "mirror(rows(T), columns(T))",
        "[[1, 2], [3, 4]]",
        "append[x2=(r.x * 2)](T)",
    ]

    @pytest.mark.parametrize("text", EXPRESSIONS)
    def test_parse_totext_parse_fixpoint(self, text):
        once = parse(text)
        assert parse(once.to_text()) == once
