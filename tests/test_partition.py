"""Horizontally partitioned tables: routing, pruning, parallelism, and
per-partition adaptation.

Covers the partitioned storage stack end to end:

* range / hash / value routing (load + inserts agree; regions persist);
* whole-partition pruning from predicate ranges (before zone maps load);
* parallel partition scans — byte-identical to serial, workers joined on
  ``close()``;
* per-partition adaptive re-layouts (hot partitions diverge, cold keep);
* differential equivalence (batch ≡ reference ≡ planned) across all of it;
* the compaction ordering regression the partition work surfaced
  (``structural_residual`` must re-establish a sorted design's order).
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.engine.database import RodentStore
from repro.errors import AlgebraError, StorageError
from repro.layout.partitioning import PartitionRouter, stable_hash
from repro.query.expressions import And, Range, Rect
from repro.types.schema import Schema

SCHEMA = Schema.of("t:int", "x:int", "g:int")


def make_records(n=600, seed=5):
    rng = random.Random(seed)
    return [
        (rng.randrange(400), rng.randrange(100), rng.randrange(8))
        for _ in range(n)
    ]


def build(layout, records, **kwargs):
    store = RodentStore(page_size=512, pool_capacity=128, **kwargs)
    store.create_table("T", SCHEMA, layout=layout)
    return store, store.load("T", records)


def assert_equivalent(store, predicate=None, fieldlist=None, order=None):
    """batch ≡ reference ≡ planned, with partition pruning on and off."""
    table = store.table("T")
    results = []
    for pruning in (True, False):
        store.partition_pruning = pruning
        batch = [
            row
            for rows in table.scan_batches(
                fieldlist=fieldlist, predicate=predicate, order=order
            )
            for row in rows
        ]
        reference = list(
            table.scan_reference(
                fieldlist=fieldlist, predicate=predicate, order=order
            )
        )
        assert batch == reference
        q = store.query("T")
        if fieldlist:
            q = q.select(*fieldlist)
        if predicate is not None:
            q = q.where(predicate)
        if order:
            q = q.order_by(*order)
        assert q.run() == batch
        results.append(batch)
    store.partition_pruning = True
    assert results[0] == results[1]
    return results[0]


# ---------------------------------------------------------------------------
# algebra / plan level
# ---------------------------------------------------------------------------


class TestPartitionAlgebra:
    def test_parse_roundtrip(self):
        from repro.algebra.parser import parse

        for text in [
            "partition[r.g](T)",
            "partition[r.t; range, 0, 100, 200](orderby[t](T))",
            "partition[r.g; hash, 8](columns(T))",
        ]:
            expr = parse(text)
            assert parse(expr.to_text()) == expr

    def test_bad_specs_rejected(self):
        from repro.algebra import ast

        with pytest.raises(AlgebraError):
            ast.partition("t", ast.table("T"), method="range", args=())
        with pytest.raises(AlgebraError):
            ast.partition(
                "t", ast.table("T"), method="range", args=(5, 5)
            )
        with pytest.raises(AlgebraError):
            ast.partition("t", ast.table("T"), method="hash", args=(0,))
        with pytest.raises(AlgebraError):
            ast.partition("t", ast.table("T"), method="shard", args=(2,))

    def test_partition_must_be_outermost(self):
        store = RodentStore(page_size=512)
        with pytest.raises(AlgebraError):
            store.create_table(
                "T", SCHEMA, layout="columns(partition[r.g; hash, 2](T))"
            )

    def test_partitions_cannot_nest(self):
        store = RodentStore(page_size=512)
        with pytest.raises(Exception):
            store.create_table(
                "T",
                SCHEMA,
                layout="partition[r.g](partition[r.t; hash, 2](T))",
            )

    def test_stable_hash_deterministic(self):
        assert stable_hash(3) == stable_hash(3.0)
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash(None) == 0


# ---------------------------------------------------------------------------
# routing and scans
# ---------------------------------------------------------------------------


class TestPartitionedScans:
    @pytest.mark.parametrize(
        "layout",
        [
            "partition[r.t; range, 100, 200, 300](T)",
            "partition[r.t; range, 100, 200, 300](orderby[t](T))",
            "partition[r.g; hash, 4](columns(T))",
            "partition[r.g](T)",
            "partition[r.t; range, 200](grid[t, x],[50, 25](T))",
            "partition[r.g; hash, 3](fold[t, x; g](T))",
        ],
    )
    def test_full_scan_is_lossless(self, layout):
        records = make_records()
        store, table = build(layout, records)
        scan_names = table.scan_schema().names()
        logical = table.logical_schema.names()
        idx = [logical.index(n) for n in scan_names]
        want = sorted(tuple(r[i] for i in idx) for r in records)
        assert sorted(table.scan()) == want
        if "fold" not in layout:
            # (folded layouts count folded records, matching the
            # unpartitioned behavior)
            assert table.row_count == len(records)
        store.close()

    def test_range_regions_cover_fixed_buckets(self):
        records = make_records()
        store, table = build(
            "partition[r.t; range, 100, 200, 300](T)", records
        )
        assert table.partition_count == 4
        bounds = [(r.lower, r.upper) for r in table.partitions]
        assert bounds == [
            (None, 100.0),
            (100.0, 200.0),
            (200.0, 300.0),
            (300.0, None),
        ]
        store.close()

    def test_hash_regions_eager_and_routed(self):
        records = make_records()
        store, table = build(
            "partition[r.g; hash, 4](T)", records
        )
        assert table.partition_count == 4
        for region in table.partitions:
            for row in store.table("T")._region_rows(region):
                assert stable_hash(row[2]) % 4 == region.key
        store.close()

    def test_value_partitions_first_seen_order(self):
        records = [(1, 0, 5), (2, 0, 3), (3, 0, 5), (4, 0, 1)]
        store, table = build("partition[r.g](T)", records)
        assert [r.key for r in table.partitions] == [5, 3, 1]
        # Scan order groups by first-seen key, like grouped rows used to.
        assert list(table.scan()) == [
            (1, 0, 5),
            (3, 0, 5),
            (2, 0, 3),
            (4, 0, 1),
        ]
        store.close()

    def test_expression_key_routes_consistently(self):
        records = make_records()
        store, table = build("partition[r.t % 5](T)", records)
        assert table.partition_count == 5
        assert sorted(table.scan()) == sorted(records)
        table.insert([(401, 1, 2)])
        assert sorted(table.scan()) == sorted(records + [(401, 1, 2)])
        store.close()

    def test_differential_equivalence(self):
        records = make_records()
        store, table = build(
            "partition[r.t; range, 100, 200, 300](orderby[t](T))", records
        )
        table.insert(records[:40])
        table.flush_inserts()
        table.insert(records[40:60])
        for predicate in [
            None,
            Range("t", 50, 150),
            Rect({"t": (0, 99), "x": (10, 60)}),
            And(Range("t", 120, 380), Range("g", 2, 5)),
        ]:
            assert_equivalent(store, predicate)
            assert_equivalent(store, predicate, fieldlist=["x", "g"])
            assert_equivalent(
                store, predicate, order=[("x", False), ("t", True)]
            )
        store.close()

    def test_range_partition_serves_order(self):
        records = make_records()
        store, table = build(
            "partition[r.t; range, 100, 200, 300](orderby[t](T))", records
        )
        assert table.order_satisfied(["t"])
        got = [r[0] for r in table.scan(order=["t"])]
        assert got == sorted(r[0] for r in records)
        # Pending rows break the guarantee until compaction.
        table.insert([(50, 1, 1)])
        assert not table.order_satisfied(["t"])
        table.compact()
        assert table.order_satisfied(["t"])
        store.close()

    def test_secondary_indexes_rejected(self):
        store, table = build(
            "partition[r.g; hash, 2](T)", make_records(100)
        )
        with pytest.raises(StorageError):
            table.create_index("t")
        with pytest.raises(StorageError):
            table.create_spatial_index("t", "x")
        store.close()


# ---------------------------------------------------------------------------
# partition pruning
# ---------------------------------------------------------------------------


class TestPartitionPruning:
    def test_range_pruning_skips_partitions_and_pages(self):
        records = make_records(800)
        store, table = build(
            "partition[r.t; range, 100, 200, 300](T)", records
        )
        predicate = Range("t", 10, 50)
        assert table.partitions_pruned(predicate) == 3
        _, io_on = store.run_cold(
            lambda: list(table.scan(predicate=predicate))
        )
        # Baseline: no partition pruning AND no zone maps (zone maps catch
        # most of the same pages — partition pruning's edge is skipping
        # them without even consulting per-page synopses).
        store.partition_pruning = False
        store.zone_pruning = False
        _, io_off = store.run_cold(
            lambda: list(table.scan(predicate=predicate))
        )
        store.partition_pruning = True
        store.zone_pruning = True
        assert io_on.page_reads < io_off.page_reads
        store.close()

    def test_value_and_hash_point_pruning(self):
        records = make_records(400)
        store, table = build("partition[r.g](T)", records)
        n = table.partition_count
        assert table.partitions_pruned(Range("g", 2, 2)) == n - 1
        store.close()

        store, table = build("partition[r.g; hash, 4](T)", records)
        assert table.partitions_pruned(Range("g", 3, 3)) == 3
        # A non-point range cannot pin a hash bucket.
        assert table.partitions_pruned(Range("g", 2, 5)) == 0
        store.close()

    def test_pruning_never_changes_answers(self):
        records = make_records(500, seed=9)
        store, table = build(
            "partition[r.t; range, 80, 160, 240, 320](columns(T))", records
        )
        table.insert([(50, 1, 1), (350, 2, 2)])
        for lo, hi in [(0, 79), (100, 110), (330, 400), (399, 399)]:
            assert_equivalent(store, Range("t", lo, hi))
        store.close()

    def test_counters_and_explain(self):
        records = make_records(300)
        store, table = build(
            "partition[r.t; range, 100, 200, 300](T)", records
        )
        predicate = Range("t", 0, 50)
        list(table.scan(predicate=predicate))
        stats = store.storage_stats()["tables"]["T"]
        assert stats["partitioned"] and stats["partition_count"] == 4
        assert stats["partition_scans"] >= 1
        assert stats["partitions_pruned"] >= 3
        explain = str(store.query("T").where(predicate).explain())
        assert "partitions_pruned=3" in explain
        store.close()


# ---------------------------------------------------------------------------
# parallel scans
# ---------------------------------------------------------------------------


class TestParallelScans:
    def test_parallel_equals_serial(self):
        records = make_records(900, seed=13)
        store, table = build(
            "partition[r.t; range, 50, 100, 150, 200, 250, 300, 350](T)",
            records,
        )
        table.insert(records[:30])
        for predicate in [None, Range("t", 60, 260)]:
            store.scan_workers = 0
            serial = [
                row
                for rows in table.scan_batches(predicate=predicate)
                for row in rows
            ]
            store.scan_workers = 4
            parallel = [
                row
                for rows in table.scan_batches(predicate=predicate)
                for row in rows
            ]
            assert parallel == serial
        store.close()

    def test_planner_uses_parallel_operator(self):
        records = make_records(300)
        store, table = build(
            "partition[r.t; range, 100, 200](T)", records, scan_workers=4
        )
        explain = str(store.query("T").explain())
        assert "ParallelTableScan" in explain
        assert "workers=4" in explain
        rows = store.query("T").where(Range("t", 0, 399)).run()
        assert sorted(rows) == sorted(records)
        store.scan_workers = 0
        assert "ParallelTableScan" not in str(store.query("T").explain())
        store.close()

    def test_abandoned_parallel_scan_drains_workers(self):
        records = make_records(600)
        store, table = build(
            "partition[r.t; range, 100, 200, 300](T)",
            records,
            scan_workers=4,
        )
        batches = table.scan_batches()
        next(batches)
        batches.close()  # abandon mid-scan: futures must be drained
        assert sorted(table.scan()) == sorted(records)
        store.close()

    def test_close_joins_scan_threads(self):
        before = threading.active_count()
        records = make_records(400)
        store, table = build(
            "partition[r.t; range, 100, 200, 300](T)",
            records,
            scan_workers=4,
        )
        list(table.scan())
        assert threading.active_count() > before
        store.close()
        assert threading.active_count() == before
        store.close()  # idempotent


# ---------------------------------------------------------------------------
# inserts, compaction, re-layouts
# ---------------------------------------------------------------------------


class TestPartitionMaintenance:
    def test_insert_routes_to_owning_partition(self):
        store, table = build(
            "partition[r.t; range, 100, 200](T)", make_records(200)
        )
        table.insert([(10, 1, 1), (150, 2, 2), (500, 3, 3), (20, 4, 4)])
        pending = {r.describe_key(): len(r.pending) for r in table.partitions}
        assert pending == {
            "[-inf, 100)": 2,
            "[100, 200)": 1,
            "[200, +inf)": 1,
        }
        table.flush_inserts()
        assert all(not r.pending for r in table.partitions)
        assert table.overflow_row_count == 4
        store.close()

    def test_compact_touches_only_dirty_partitions(self):
        records = make_records(400)
        store, table = build(
            "partition[r.t; range, 100, 200, 300](T)", records
        )
        untouched = [
            r.layout for r in table.partitions if r.lower == 100.0
        ]
        table.insert([(10, 1, 1)])  # only the first partition is dirty
        table.compact()
        still = [r.layout for r in table.partitions if r.lower == 100.0]
        assert untouched == still  # same object: region was not re-rendered
        assert table.overflow_row_count == 0
        store.close()

    def test_relayout_partition_single_region(self):
        records = make_records(500)
        store, table = build(
            "partition[r.t; range, 100, 200, 300](T)", records
        )
        target = table.partitions[1]
        before = store.disk.stats.snapshot()
        store.relayout_partition("T", target.pid, "columns(T)")
        delta = store.disk.stats.delta(before)
        # Only that region's pages moved (a whole-table rewrite would read
        # 4x as much).
        region_pages = table.partitions[1].total_pages()
        assert delta.page_writes <= region_pages + 4
        assert table.partitions[1].plan.kind == "columns"
        assert {r.plan.kind for r in table.partitions} == {"rows", "columns"}
        assert sorted(table.scan()) == sorted(records)
        assert_equivalent(store, Range("t", 50, 250))
        store.close()

    def test_relayout_partition_rejects_lossy_and_partitioned(self):
        store, table = build(
            "partition[r.t; range, 100](T)", make_records(100)
        )
        pid = table.partitions[0].pid
        with pytest.raises(StorageError):
            store.relayout_partition("T", pid, "project[t, x](T)")
        with pytest.raises(StorageError):
            store.relayout_partition("T", pid, "partition[r.g; hash, 2](T)")
        store.close()

    def test_failed_region_relayout_leaves_region_intact(self):
        records = make_records(200)
        store, table = build(
            "partition[r.t; range, 100, 200](T)", records
        )
        region = table.partitions[0]
        region_rows = sorted(store.table("T")._region_rows(region))
        table.insert([(10, 7, 7)])  # pending row in the target region
        plan_before = region.plan

        # Force a render-time failure (e.g. a record not fitting a page
        # under the new design) deterministically.
        def boom(*args, **kwargs):
            raise StorageError("render failed")

        original = store.renderer.render_region
        store.renderer.render_region = boom
        try:
            with pytest.raises(StorageError):
                store.relayout_partition("T", region.pid, "columns(T)")
        finally:
            store.renderer.render_region = original
        # The region is untouched: old plan, old layout, pending intact.
        assert region.plan is plan_before
        assert len(region.pending) == 1
        assert sorted(store.table("T")._region_rows(region)) == sorted(
            region_rows + [(10, 7, 7)]
        )
        assert sorted(table.scan()) == sorted(records + [(10, 7, 7)])
        store.close()

    def test_reload_resets_partition_skew(self):
        records = make_records(200)
        store, table = build(
            "partition[r.t; range, 100, 200](T)", records
        )
        for _ in range(5):
            list(table.scan(predicate=Range("t", 0, 50)))
        monitor = store.catalog.entry("T").monitor
        assert monitor.partition_weights()
        store.load("T", records)  # reload rebuilds the partition map
        assert monitor.partition_weights() == {}
        store.close()

    def test_whole_table_relayout_to_and_from_partitioned(self):
        records = make_records(300)
        store, table = build("columns(T)", records)
        table.insert([(500, 1, 1)])
        store.relayout("T", "partition[r.t; range, 100, 200](orderby[t](T))")
        table = store.table("T")
        assert table.is_partitioned and table.partition_count == 3
        assert sorted(table.scan()) == sorted(records + [(500, 1, 1)])
        store.relayout("T", "T")
        table = store.table("T")
        assert not table.is_partitioned
        assert sorted(table.scan()) == sorted(records + [(500, 1, 1)])
        store.close()


# ---------------------------------------------------------------------------
# per-partition adaptation
# ---------------------------------------------------------------------------


class TestPartitionAdaptivity:
    def test_hot_partition_diverges_cold_keeps(self):
        rng = random.Random(3)
        records = [
            (i, rng.randrange(1000), rng.randrange(40)) for i in range(4000)
        ]
        store = RodentStore(page_size=1024, pool_capacity=256)
        store.create_table(
            "T",
            Schema.of("t:int", "x:int", "g:int"),
            layout="partition[r.t; range, 1000, 2000, 3000](T)",
        )
        table = store.load("T", records)
        for _ in range(40):  # hammer the first partition with projections
            list(table.scan(fieldlist=["x"], predicate=Range("t", 0, 900)))
        decision = store.adapt("T")
        assert decision["adapted"], decision
        assert decision["relayout_partitions"] == [0]
        assert set(decision["kept_partitions"]) == {1, 2, 3}
        kinds = {r.pid: r.plan.expr.to_text() for r in table.partitions}
        assert kinds[0] != kinds[1]  # hot diverged, cold kept the template
        assert kinds[1] == kinds[2] == kinds[3]
        # Answers unchanged after the partial re-layout and re-check.
        assert sorted(table.scan()) == sorted(records)
        assert_equivalent(store, Range("t", 500, 1500), fieldlist=["x"])
        again = store.adapt("T")
        assert not again["adapted"]  # stable: no thrash on re-check
        store.close()

    def test_skew_report_and_reorg_counters(self):
        records = make_records(800)
        store, table = build(
            "partition[r.t; range, 100, 200, 300](T)", records
        )
        for _ in range(10):
            list(table.scan(predicate=Range("t", 0, 50)))
        report = store.storage_stats()["adaptivity"]["tables"]["T"]
        skew = report["partition_skew"]
        hottest = max(skew, key=skew.get)
        assert table.partitions[0].pid == hottest
        store.close()


# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------


class TestPartitionPersistence:
    def test_round_trip(self, tmp_path):
        records = make_records(400)
        db = str(tmp_path / "db.pages")
        cat = str(tmp_path / "catalog.json")
        store = RodentStore(path=db, page_size=1024)
        store.create_table(
            "T", SCHEMA, layout="partition[r.t; range, 100, 200](T)"
        )
        table = store.load("T", records)
        store.relayout_partition("T", table.partitions[2].pid, "columns(T)")
        table.insert([(50, 1, 1), (250, 2, 2)])
        table.flush_inserts()
        table.insert([(150, 3, 3)])
        list(table.scan(predicate=Range("t", 0, 60)))
        store.save_catalog(cat)
        store.close()

        reopened = RodentStore.open(db, cat, page_size=1024)
        t2 = reopened.table("T")
        assert t2.is_partitioned and t2.partition_count == 3
        assert t2.partitions[2].plan.kind == "columns"
        assert sorted(t2.scan()) == sorted(
            records + [(50, 1, 1), (250, 2, 2), (150, 3, 3)]
        )
        assert t2.partitions_pruned(Range("t", 0, 60)) == 2
        # Skew survives the reopen.
        monitor = reopened.catalog.entry("T").monitor
        assert monitor is not None and monitor.partition_weights()
        assert_equivalent(reopened, Range("t", 120, 260))
        reopened.close()


# ---------------------------------------------------------------------------
# the compaction-order regression (pre-existing bug fixed by this refactor)
# ---------------------------------------------------------------------------


class TestCompactKeepsOrder:
    def test_sorted_table_stays_sorted_after_compact(self):
        store = RodentStore(page_size=512)
        store.create_table(
            "T", Schema.of("t:int", "x:int"), layout="orderby[t](T)"
        )
        table = store.load("T", [(5, 0), (1, 1), (9, 2)])
        table.insert([(3, 3), (0, 4)])
        table.flush_inserts()
        table.compact()
        rows = list(store.table("T").scan())
        assert [r[0] for r in rows] == [0, 1, 3, 5, 9]
        # The sorted-range pruning path must see every matching row.
        assert sorted(store.table("T").scan(predicate=Range("t", 0, 3))) == [
            (0, 4),
            (1, 1),
            (3, 3),
        ]
        store.close()
