"""Tests for repro.engine.persistence (save/reopen a store)."""

import pytest

from repro.engine.database import RodentStore
from repro.errors import CatalogError
from repro.query.expressions import Range, Rect
from repro.types import Schema

SCHEMA = Schema.of("t:int", "lat:int", "lon:int", "id:int")
RECORDS = [(i, (i * 37) % 500, (i * 53) % 500, i % 7) for i in range(400)]

LAYOUTS = {
    "rows": "T",
    "ordered": "orderby[t](T)",
    "columns": "columns[[t], [lat, lon], [id]](T)",
    "grid": "compress[varint; lat, lon](delta[lat, lon](zorder("
            "grid[lat, lon],[100, 100](project[lat, lon](T)))))",
    "folded": "fold[lat, lon; id](T)",
    "mirror": "mirror(rows(T), columns(T))",
}


def save_and_reopen(tmp_path, layout):
    db_path = str(tmp_path / "db.pages")
    cat_path = str(tmp_path / "catalog.json")
    store = RodentStore(path=db_path, page_size=1024, pool_capacity=64)
    store.create_table("T", SCHEMA, layout=layout)
    store.load("T", RECORDS)
    store.save_catalog(cat_path)
    store.close()
    return RodentStore.open(db_path, cat_path, page_size=1024)


class TestRoundTrip:
    @pytest.mark.parametrize("name", list(LAYOUTS))
    def test_scan_after_reopen(self, tmp_path, name):
        reopened = save_and_reopen(tmp_path, LAYOUTS[name])
        table = reopened.table("T")
        got = sorted(table.scan())
        original = RodentStore(page_size=1024)
        original.create_table("T", SCHEMA, layout=LAYOUTS[name])
        expected = sorted(original.load("T", RECORDS).scan())
        assert got == expected

    def test_grid_pruning_survives(self, tmp_path):
        reopened = save_and_reopen(tmp_path, LAYOUTS["grid"])
        table = reopened.table("T")
        q = Rect({"lat": (0, 99), "lon": (0, 99)})
        _, io = reopened.run_cold(lambda: list(table.scan(predicate=q)))
        assert io.page_reads < table.layout.total_pages()
        got = sorted(table.scan(predicate=q))
        want = sorted(
            (r[1], r[2]) for r in RECORDS if r[1] <= 99 and r[2] <= 99
        )
        assert got == want

    def test_plan_recompiled(self, tmp_path):
        reopened = save_and_reopen(tmp_path, LAYOUTS["grid"])
        plan = reopened.table("T").plan
        assert plan.kind == "grid"
        assert plan.grid.cell_order == "zorder"
        assert plan.delta_fields == ("lat", "lon")
        assert plan.codec_for("lat") == "varint"

    def test_stats_survive(self, tmp_path):
        reopened = save_and_reopen(tmp_path, LAYOUTS["rows"])
        stats = reopened.catalog.entry("T").stats
        assert stats.row_count == len(RECORDS)
        assert stats.fields["lat"].min_value == min(r[1] for r in RECORDS)
        assert stats.fields["lat"].histogram  # histograms persisted

    def test_overflow_survives(self, tmp_path):
        db_path = str(tmp_path / "db.pages")
        cat_path = str(tmp_path / "catalog.json")
        store = RodentStore(path=db_path, page_size=1024)
        store.create_table("T", SCHEMA)
        table = store.load("T", RECORDS[:300])
        table.insert(RECORDS[300:])
        table.flush_inserts()
        store.save_catalog(cat_path)
        store.close()
        reopened = RodentStore.open(db_path, cat_path, page_size=1024)
        assert sorted(reopened.table("T").scan()) == sorted(RECORDS)
        assert reopened.table("T").overflow_row_count == 100

    def test_multiple_tables(self, tmp_path):
        db_path = str(tmp_path / "db.pages")
        cat_path = str(tmp_path / "catalog.json")
        store = RodentStore(path=db_path, page_size=1024)
        store.create_table("A", SCHEMA)
        store.load("A", RECORDS[:100])
        store.create_table("B", SCHEMA, layout="columns(B)")
        store.load("B", RECORDS[100:250])
        store.save_catalog(cat_path)
        store.close()
        reopened = RodentStore.open(db_path, cat_path, page_size=1024)
        assert sorted(reopened.table("A").scan()) == sorted(RECORDS[:100])
        assert sorted(reopened.table("B").scan()) == sorted(RECORDS[100:250])

    def test_queries_and_costs_work_after_reopen(self, tmp_path):
        reopened = save_and_reopen(tmp_path, LAYOUTS["columns"])
        table = reopened.table("T")
        cost = table.scan_cost(fieldlist=["id"])
        assert 0 < cost.pages < table.layout.total_pages()
        got = list(table.scan(fieldlist=["id"], predicate=Range("lat", 0, 99)))
        want = [(r[3],) for r in RECORDS if r[1] <= 99]
        assert got == want

    def test_indexes_rebuildable_after_reopen(self, tmp_path):
        reopened = save_and_reopen(tmp_path, LAYOUTS["rows"])
        table = reopened.table("T")
        table.create_index("lat")
        got = sorted(table.scan(predicate=Range("lat", 100, 120)))
        want = sorted(r for r in RECORDS if 100 <= r[1] <= 120)
        assert got == want


class TestErrors:
    def test_page_size_mismatch(self, tmp_path):
        db_path = str(tmp_path / "db.pages")
        cat_path = str(tmp_path / "catalog.json")
        store = RodentStore(path=db_path, page_size=1024)
        store.create_table("T", SCHEMA)
        store.load("T", RECORDS[:10])
        store.save_catalog(cat_path)
        store.close()
        from repro.errors import StorageError

        # Either the disk manager rejects the file geometry or the catalog
        # loader rejects the page-size mismatch — both refuse to open.
        with pytest.raises((CatalogError, StorageError)):
            RodentStore.open(db_path, cat_path, page_size=2048)

    def test_bad_version(self, tmp_path):
        cat_path = tmp_path / "catalog.json"
        cat_path.write_text('{"version": 99, "page_size": 1024, "tables": []}')
        store = RodentStore(page_size=1024)
        from repro.engine.persistence import load_catalog

        with pytest.raises(CatalogError):
            load_catalog(store, str(cat_path))
