"""Tests for scan pruning paths: sorted rows and folded key ranges."""

import pytest

from repro.engine.database import RodentStore
from repro.query.expressions import Range, Rect
from repro.types import Schema
from repro.workloads.rdf import (
    TRIPLE_SCHEMA,
    VERTICAL_PARTITION_EXPR,
    generate_triples,
)

SCHEMA = Schema.of("t:int", "lat:int", "lon:int", "id:int")
RECORDS = [(i, (i * 37) % 500, (i * 53) % 500, i % 7) for i in range(1200)]


class TestSortedRowsPruning:
    @pytest.fixture
    def sorted_table(self):
        store = RodentStore(page_size=1024, pool_capacity=64)
        store.create_table("T", SCHEMA, layout="orderby[t](T)")
        return store, store.load("T", RECORDS)

    def test_range_scan_correct(self, sorted_table):
        _, table = sorted_table
        got = list(table.scan(predicate=Range("t", 100, 199)))
        assert got == [r for r in RECORDS if 100 <= r[0] <= 199]

    def test_range_scan_prunes_pages(self, sorted_table):
        store, table = sorted_table
        _, io = store.run_cold(
            lambda: list(table.scan(predicate=Range("t", 100, 150)))
        )
        assert io.page_reads < table.layout.total_pages() / 3

    def test_boundary_values_included(self, sorted_table):
        _, table = sorted_table
        got = list(table.scan(predicate=Range("t", 0, 0)))
        assert got == [RECORDS[0]]
        got = list(table.scan(predicate=Range("t", 1199, 1500)))
        assert got == [RECORDS[1199]]

    def test_empty_range(self, sorted_table):
        _, table = sorted_table
        got = list(table.scan(predicate=Range("t", 5000, 6000)))
        assert got == []

    def test_non_leading_key_not_pruned(self, sorted_table):
        _, table = sorted_table
        got = sorted(table.scan(predicate=Range("lat", 0, 50)))
        assert got == sorted(r for r in RECORDS if r[1] <= 50)

    def test_secondary_condition_still_applied(self, sorted_table):
        _, table = sorted_table
        predicate = Rect({"t": (100, 300), "lat": (0, 100)})
        got = list(table.scan(predicate=predicate))
        want = [
            r for r in RECORDS if 100 <= r[0] <= 300 and r[1] <= 100
        ]
        assert got == want

    def test_descending_sort_not_pruned_but_correct(self):
        store = RodentStore(page_size=1024)
        store.create_table("T", SCHEMA, layout="orderby[t DESC](T)")
        table = store.load("T", RECORDS)
        got = list(table.scan(predicate=Range("t", 10, 20)))
        assert sorted(got) == [r for r in RECORDS if 10 <= r[0] <= 20]

    def test_scan_cost_reflects_pruning(self, sorted_table):
        _, table = sorted_table
        pruned = table.scan_cost(predicate=Range("t", 100, 120))
        full = table.scan_cost()
        assert pruned.pages < full.pages

    def test_unsorted_rows_pruned_by_zone_maps_only(self):
        """Without sort-order pruning, page zone maps still prune clustered
        values; with zone pruning disabled the scan reads every page."""
        store = RodentStore(page_size=1024)
        store.create_table("T", SCHEMA)
        table = store.load("T", RECORDS)
        _, io = store.run_cold(
            lambda: list(table.scan(predicate=Range("t", 0, 10)))
        )
        assert io.page_reads < table.layout.total_pages()
        store.zone_pruning = False
        _, io = store.run_cold(
            lambda: list(table.scan(predicate=Range("t", 0, 10)))
        )
        assert io.page_reads == table.layout.total_pages()


class TestFoldedKeyPruning:
    @pytest.fixture
    def folded(self):
        store = RodentStore(page_size=1024, pool_capacity=64)
        store.create_table("T", SCHEMA, layout="fold[lat, lon; id](T)")
        return store, store.load("T", RECORDS)

    def test_group_query_correct(self, folded):
        _, table = folded
        got = sorted(table.scan(predicate=Range("id", 3, 3)))
        want = sorted((r[3], r[1], r[2]) for r in RECORDS if r[3] == 3)
        assert got == want

    def test_group_query_prunes_pages(self, folded):
        store, table = folded
        _, io_one = store.run_cold(
            lambda: list(table.scan(predicate=Range("id", 3, 3)))
        )
        _, io_all = store.run_cold(lambda: list(table.scan()))
        assert io_one.page_reads < io_all.page_reads

    def test_multi_group_range(self, folded):
        _, table = folded
        got = sorted(table.scan(predicate=Range("id", 2, 4)))
        want = sorted(
            (r[3], r[1], r[2]) for r in RECORDS if 2 <= r[3] <= 4
        )
        assert got == want

    def test_nest_field_predicate_not_pruned_but_correct(self, folded):
        _, table = folded
        got = sorted(table.scan(predicate=Range("lat", 0, 40)))
        want = sorted(
            (r[3], r[1], r[2]) for r in RECORDS if r[1] <= 40
        )
        assert got == want

    def test_scan_cost_reflects_pruning(self, folded):
        _, table = folded
        pruned = table.scan_cost(predicate=Range("id", 3, 3))
        full = table.scan_cost()
        assert pruned.pages <= full.pages

    def test_rdf_vertical_partition_end_to_end(self):
        """The §7 RDF use case: fold = vertical partitioning."""
        triples = generate_triples(8_000)
        store = RodentStore(page_size=1024, pool_capacity=64)
        store.create_table(
            "Triples", TRIPLE_SCHEMA, layout=VERTICAL_PARTITION_EXPR
        )
        table = store.load("Triples", triples)
        _, io_one = store.run_cold(
            lambda: list(table.scan(predicate=Range("predicate", 0, 0)))
        )
        assert io_one.page_reads < table.layout.total_pages()
        got = sorted(table.scan(predicate=Range("predicate", 0, 0)))
        want = sorted((t[1], t[0], t[2]) for t in triples if t[1] == 0)
        assert got == want
