"""Tests for repro.query (predicates, executor, fluent front end)."""

import math

import pytest

from repro.algebra.parser import parse_condition
from repro.engine.database import RodentStore
from repro.errors import QueryError
from repro.query import (
    And,
    Not,
    Or,
    Q,
    Range,
    Rect,
    from_scalar,
)
from repro.query.executor import Aggregate, QuerySpec, execute
from repro.types import Schema

SCHEMA = Schema.of("t:int", "lat:int", "lon:int", "id:int")
RECORDS = [(i, (i * 37) % 500, (i * 53) % 500, i % 7) for i in range(200)]
POS = {"t": 0, "lat": 1, "lon": 2, "id": 3}


@pytest.fixture
def qstore():
    store = RodentStore(page_size=1024)
    store.create_table("T", SCHEMA)
    store.load("T", RECORDS)
    return store


class TestRange:
    def test_matches(self):
        r = Range("lat", 10, 20)
        assert r.matches((0, 15, 0, 0), POS)
        assert r.matches((0, 10, 0, 0), POS)
        assert not r.matches((0, 21, 0, 0), POS)

    def test_open_bounds(self):
        assert Range("lat", lo=100).matches((0, 500, 0, 0), POS)
        assert Range("lat", hi=100).matches((0, -5, 0, 0), POS)

    def test_empty_range_rejected(self):
        with pytest.raises(QueryError):
            Range("lat", 5, 4)

    def test_unknown_field(self):
        with pytest.raises(QueryError):
            Range("nope", 0, 1).matches((1,), {"a": 0})

    def test_ranges(self):
        assert Range("lat", 1, 2).ranges() == {"lat": (1, 2)}


class TestRect:
    def test_matches_conjunction(self):
        rect = Rect({"lat": (0, 100), "lon": (50, 60)})
        assert rect.matches((0, 50, 55, 0), POS)
        assert not rect.matches((0, 50, 61, 0), POS)

    def test_ranges(self):
        rect = Rect({"lat": (0, 100)})
        assert rect.ranges() == {"lat": (0, 100)}

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            Rect({})


class TestCombinators:
    def test_and_intersects_ranges(self):
        p = And(Range("lat", 0, 100), Range("lat", 50, 200))
        assert p.ranges() == {"lat": (50, 100)}
        assert p.matches((0, 75, 0, 0), POS)
        assert not p.matches((0, 25, 0, 0), POS)

    def test_or_bounding_interval(self):
        p = Or(Range("lat", 0, 10), Range("lat", 50, 60))
        assert p.ranges() == {"lat": (0, 60)}
        assert p.matches((0, 5, 0, 0), POS)
        assert p.matches((0, 55, 0, 0), POS)
        # Range pruning keeps the gap (necessary condition only); exact
        # matching still excludes it.
        assert not p.matches((0, 30, 0, 0), POS)

    def test_or_mixed_fields_no_common_range(self):
        p = Or(Range("lat", 0, 10), Range("lon", 0, 10))
        assert p.ranges() == {}

    def test_not_no_ranges(self):
        p = Not(Range("lat", 0, 10))
        assert p.ranges() == {}
        assert p.matches((0, 50, 0, 0), POS)
        assert not p.matches((0, 5, 0, 0), POS)

    def test_or_requires_two(self):
        with pytest.raises(QueryError):
            Or(Range("lat", 0, 1))


class TestScalarPredicate:
    def test_from_condition(self):
        p = from_scalar(parse_condition("r.lat >= 10 and r.lat <= 20"))
        assert p.ranges() == {"lat": (10, 20)}
        assert p.matches((0, 15, 0, 0), POS)

    def test_equality_range(self):
        p = from_scalar(parse_condition("r.id = 3"))
        assert p.ranges() == {"id": (3.0, 3.0)}

    def test_flipped_comparison(self):
        p = from_scalar(parse_condition("10 <= r.lat"))
        assert p.ranges() == {"lat": (10.0, math.inf)}

    def test_disjunction_no_ranges(self):
        p = from_scalar(parse_condition("r.lat = 1 or r.lon = 2"))
        assert p.ranges() == {}

    def test_inequality_prunes_nothing(self):
        p = from_scalar(parse_condition("r.lat != 5"))
        assert p.ranges() == {}

    def test_residual_condition_applied(self):
        p = from_scalar(parse_condition("r.lat > 10 and r.id % 2 = 0"))
        assert "lat" in p.ranges()
        assert p.matches((0, 20, 0, 4), POS)
        assert not p.matches((0, 20, 0, 3), POS)

    def test_fields_used(self):
        p = from_scalar(parse_condition("r.lat > 1 and r.lon < 2"))
        assert p.fields_used() == {"lat", "lon"}


class TestExecutor:
    def test_basic_spec(self, qstore):
        spec = QuerySpec(
            table="T", fieldlist=("t",), predicate=Range("lat", 0, 50)
        )
        out = execute(qstore.table("T"), spec)
        assert out == [(r[0],) for r in RECORDS if r[1] <= 50]

    def test_limit_short_circuits(self, qstore):
        spec = QuerySpec(table="T", limit=5)
        assert len(execute(qstore.table("T"), spec)) == 5

    def test_aggregation_group_by(self, qstore):
        spec = QuerySpec(
            table="T",
            group_by=("id",),
            aggregates=(Aggregate("count", None), Aggregate("sum", "t")),
        )
        out = execute(qstore.table("T"), spec)
        assert len(out) == 7
        by_id = {row[0]: (row[1], row[2]) for row in out}
        for key in range(7):
            members = [r for r in RECORDS if r[3] == key]
            assert by_id[key] == (
                len(members),
                sum(r[0] for r in members),
            )

    def test_global_aggregate(self, qstore):
        spec = QuerySpec(
            table="T", aggregates=(Aggregate("avg", "lat", "mean_lat"),)
        )
        out = execute(qstore.table("T"), spec)
        expected = sum(r[1] for r in RECORDS) / len(RECORDS)
        assert out == [(pytest.approx(expected),)]

    def test_aggregate_validation(self):
        with pytest.raises(QueryError):
            Aggregate("median", "x")
        with pytest.raises(QueryError):
            Aggregate("sum", None)

    def test_aggregate_ordering(self, qstore):
        spec = QuerySpec(
            table="T",
            group_by=("id",),
            aggregates=(Aggregate("count", None, "n"),),
            order=(("n", False),),
            limit=2,
        )
        out = execute(qstore.table("T"), spec)
        counts = [row[1] for row in out]
        assert counts == sorted(counts, reverse=True)[:2]


class TestFluentQ:
    def test_select_where_order_limit(self, qstore):
        rows = (
            Q(qstore, "T")
            .select("t", "lat")
            .where(Range("lat", 0, 100))
            .order_by("-lat")
            .limit(3)
            .run()
        )
        assert len(rows) == 3
        assert [r[1] for r in rows] == sorted(
            (r[1] for r in rows), reverse=True
        )

    def test_where_composes_with_and(self, qstore):
        rows = (
            Q(qstore, "T")
            .where(Range("lat", 0, 100))
            .where(Range("lon", 0, 100))
            .run()
        )
        assert rows == [
            r for r in RECORDS if r[1] <= 100 and r[2] <= 100
        ]

    def test_group_agg(self, qstore):
        rows = Q(qstore, "T").group_by("id").agg(n="*").run()
        assert sum(r[1] for r in rows) == len(RECORDS)

    def test_agg_spec_parsing(self, qstore):
        rows = Q(qstore, "T").agg(lo="min:lat", hi="max:lat").run()
        assert rows == [(min(r[1] for r in RECORDS), max(r[1] for r in RECORDS))]

    def test_agg_bad_spec(self, qstore):
        with pytest.raises(QueryError):
            Q(qstore, "T").agg(x="sum")

    def test_explain_returns_cost(self, qstore):
        cost = Q(qstore, "T").select("t").explain()
        assert cost.pages > 0

    def test_negative_limit(self, qstore):
        with pytest.raises(QueryError):
            Q(qstore, "T").limit(-1)
