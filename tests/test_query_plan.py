"""Plan-based query stack: planner-vs-reference equivalence + join oracle.

Two safety nets for the query compiler (QuerySpec → logical plan →
physical operators):

* an **equivalence sweep**: for every layout kind the renderer supports,
  planner-executed results must match a naive reference evaluation built
  on :meth:`Table.scan_reference` (the tuple-at-a-time executable spec)
  for projection / predicate / order / limit / aggregation combinations;
* a **join oracle**: hash-join results must equal a nested-loop join over
  the same scans, including multi-key joins, collision-qualified columns,
  join reordering, and SQL null-key semantics.

Also here: the `order_by` single-prefix fix, `count(field)` null
semantics, and `explain()` plan-tree rendering.
"""

import pytest

from repro.engine.database import RodentStore
from repro.errors import QueryError
from repro.query import Q, QuerySpec, Range, Rect
from repro.query.executor import Aggregate, execute
from repro.query.expressions import And, Or
from repro.query.operators import (
    GroupByOp,
    HashJoinOp,
    RowsOp,
    TableScanOp,
)
from repro.types import Schema

SCHEMA = Schema.of("t:int", "x:int", "y:int", "g:int")

#: Every layout kind the renderer supports (mirrors tests/test_batch_scan).
LAYOUTS = {
    "rows": "T",
    "rows_sorted": "orderby[t](T)",
    "rows_delta": "delta[t](orderby[t](T))",
    "columns": "columns(T)",
    "grouped": "columns[[t, g], [x, y]](T)",
    "columns_lz": "compress[lz](columns(T))",
    "mirror": "mirror(rows(T), columns(T))",
    "grid": "grid[x, y],[25, 25](T)",
    "grid_zorder_delta": (
        "compress[varint; x, y](delta[x, y](zorder(grid[x, y],[25, 25](T))))"
    ),
    "folded": "fold[t, x, y; g](T)",
    "array": "transpose(project[x, y](T))",
}


def make_records(n=220):
    return [(i, (i * 7) % 53 - 26, (i * i) % 41, i % 5) for i in range(n)]


@pytest.fixture(scope="module")
def tables():
    out = {}
    for name, layout in LAYOUTS.items():
        store = RodentStore(page_size=1024, pool_capacity=64)
        store.create_table("T", SCHEMA, layout=layout)
        out[name] = (store, store.load("T", make_records()))
    return out


# ---------------------------------------------------------------------------
# reference evaluation (naive, tuple-at-a-time, buffers group members)
# ---------------------------------------------------------------------------


def reference_eval(table, spec):
    names = table.scan_schema().names()
    pos = {n: i for i, n in enumerate(names)}
    rows = list(table.scan_reference())
    if spec.predicate is not None:
        rows = [r for r in rows if spec.predicate.matches(r, pos)]
    limit = None if spec.limit is None else max(0, spec.limit)
    if spec.aggregates:
        groups: dict[tuple, list] = {}
        for r in rows:
            key = tuple(r[pos[k]] for k in spec.group_by)
            groups.setdefault(key, []).append(r)
        out = []
        for key, members in groups.items():
            values = list(key)
            for agg in spec.aggregates:
                if agg.source is None:
                    values.append(len(members))
                    continue
                data = [
                    m[pos[agg.source]]
                    for m in members
                    if m[pos[agg.source]] is not None
                ]
                if agg.func == "count":
                    values.append(len(data))
                elif agg.func == "sum":
                    values.append(sum(data) if data else None)
                elif agg.func == "avg":
                    values.append(sum(data) / len(data) if data else None)
                elif agg.func == "min":
                    values.append(min(data) if data else None)
                else:
                    values.append(max(data) if data else None)
            out.append(tuple(values))
        out_names = list(spec.group_by) + [
            a.output_name for a in spec.aggregates
        ]
        opos = {n: i for i, n in enumerate(out_names)}
        for name, ascending in reversed(spec.order):
            out.sort(key=lambda r: r[opos[name]], reverse=not ascending)
        return out if limit is None else out[:limit]
    for name, ascending in reversed(spec.order):
        rows.sort(key=lambda r: r[pos[name]], reverse=not ascending)
    if limit is not None:
        rows = rows[:limit]
    if spec.fieldlist:
        idx = [pos[f] for f in spec.fieldlist]
        rows = [tuple(r[i] for i in idx) for r in rows]
    return rows


SPECS = {
    "full": QuerySpec(table="T"),
    "project": QuerySpec(table="T", fieldlist=("x",)),
    "project_predicate": QuerySpec(
        table="T", fieldlist=("y", "t"), predicate=Range("x", -10, 10)
    ),
    "rect_order_limit": QuerySpec(
        table="T",
        predicate=Rect({"x": (-5, 20), "y": (0, 30)}),
        order=(("t", False),),
        limit=17,
    ),
    "or_multisort": QuerySpec(
        table="T",
        predicate=Or(Range("x", -26, -10), Range("y", 0, 5)),
        order=(("x", True), ("t", False)),
    ),
    "group_all_aggs": QuerySpec(
        table="T",
        group_by=("g",),
        aggregates=(
            Aggregate("count", None, "n"),
            Aggregate("sum", "x", "sx"),
            Aggregate("min", "y"),
            Aggregate("max", "t"),
            Aggregate("avg", "x"),
        ),
    ),
    "group_count_field": QuerySpec(
        table="T",
        group_by=("g",),
        aggregates=(Aggregate("count", "x", "nx"),),
        order=(("g", True),),
    ),
    "global_agg": QuerySpec(
        table="T", aggregates=(Aggregate("avg", "y", "my"),)
    ),
    "pred_group_order_limit": QuerySpec(
        table="T",
        predicate=Range("t", 50, 150),
        group_by=("g",),
        aggregates=(Aggregate("sum", "t", "st"),),
        order=(("st", False),),
        limit=3,
    ),
}

ARRAY_SPECS = {
    "full": QuerySpec(table="T"),
    "predicate_limit": QuerySpec(
        table="T", predicate=Range("value", 0, 30), limit=40
    ),
    "global_agg": QuerySpec(
        table="T",
        aggregates=(Aggregate("count", None, "n"), Aggregate("sum", "value")),
    ),
}


@pytest.mark.parametrize("layout", sorted(LAYOUTS))
def test_planner_matches_reference(tables, layout):
    _, table = tables[layout]
    specs = ARRAY_SPECS if layout == "array" else SPECS
    for name, spec in specs.items():
        got = execute(table, spec)
        want = reference_eval(table, spec)
        assert got == want, f"layout={layout} spec={name}"


# ---------------------------------------------------------------------------
# joins vs a nested-loop oracle
# ---------------------------------------------------------------------------

DIM_SCHEMA = Schema.of("g:int", "label:int")
DIM = [(i, (i + 1) * 100) for i in range(5)]
CODE_SCHEMA = Schema.of("label:int", "code:int")
CODES = [((i + 1) * 100, i * 7) for i in range(4)]  # label 500 has no code


@pytest.fixture()
def join_store():
    store = RodentStore(page_size=1024, pool_capacity=64)
    store.create_table("T", SCHEMA)
    store.load("T", make_records())
    store.create_table("D", DIM_SCHEMA)
    store.load("D", DIM)
    store.create_table("E", CODE_SCHEMA)
    store.load("E", CODES)
    return store


def nested_loop(left_rows, right_rows, pairs):
    out = []
    for l in left_rows:
        for r in right_rows:
            if all(
                l[li] is not None and l[li] == r[ri] for li, ri in pairs
            ):
                out.append(l + r)
    return out


def test_join_matches_nested_loop_oracle(join_store):
    got = Q(join_store, "T").join("D", on="g").run()
    t_rows = list(join_store.table("T").scan_reference())
    d_rows = list(join_store.table("D").scan_reference())
    want = nested_loop(t_rows, d_rows, [(3, 0)])
    assert sorted(got) == sorted(want)
    # Output schema: base fields then joined fields, collisions qualified.
    fields = Q(join_store, "T").join("D", on="g").explain().root.fields
    assert fields == ("t", "x", "y", "g", "D.g", "label")


def test_three_way_join_oracle(join_store):
    got = (
        Q(join_store, "T")
        .join("D", on="g")
        .join("E", on="label")
        .select("t", "label", "code")
        .run()
    )
    t_rows = list(join_store.table("T").scan_reference())
    d_rows = list(join_store.table("D").scan_reference())
    e_rows = list(join_store.table("E").scan_reference())
    td = nested_loop(t_rows, d_rows, [(3, 0)])
    tde = nested_loop(td, e_rows, [(5, 0)])
    want = [(r[0], r[5], r[7]) for r in tde]
    assert sorted(got) == sorted(want)


def test_join_with_predicate_pushdown_and_residual(join_store):
    q = (
        Q(join_store, "T")
        .join("D", on="g")
        .where(And(Range("x", -10, 15), Range("D.g", 1, 3)))
    )
    got = q.run()
    t_rows = list(join_store.table("T").scan_reference())
    d_rows = list(join_store.table("D").scan_reference())
    want = [
        row
        for row in nested_loop(t_rows, d_rows, [(3, 0)])
        if -10 <= row[1] <= 15 and 1 <= row[4] <= 3
    ]
    assert sorted(got) == sorted(want)
    # The x-range pushes into the T scan; the qualified D.g range stays
    # residual (the scan below knows nothing about qualified names).
    text = str(q.explain())
    assert "Filter" in text and "D.g" in text


def test_join_group_by(join_store):
    got = (
        Q(join_store, "T")
        .join("D", on="g")
        .group_by("label")
        .agg(n="*", sx="sum:x")
        .order_by("label")
        .run()
    )
    records = make_records()
    want = []
    for g, label in DIM:
        members = [r for r in records if r[3] == g]
        if members:
            want.append((label, len(members), sum(r[1] for r in members)))
    want.sort()
    assert got == want


def test_join_composite_key(join_store):
    store = join_store
    store.create_table("P", Schema.of("a:int", "b:int", "tag:int"))
    pairs = [(i % 5, i % 3, i) for i in range(15)]
    store.load("P", pairs)
    got = (
        Q(store, "T")
        .join("P", on=[("g", "a"), ("g", "b")])
        .select("t", "tag")
        .run()
    )
    t_rows = list(store.table("T").scan_reference())
    want = [
        (t[0], p[2])
        for t in t_rows
        for p in pairs
        if t[3] == p[0] and t[3] == p[1]
    ]
    assert sorted(got) == sorted(want)


def test_join_unknown_key_raises(join_store):
    with pytest.raises(QueryError):
        Q(join_store, "T").join("D", on="nope").run()


def test_join_same_table_twice_raises(join_store):
    with pytest.raises(QueryError):
        Q(join_store, "T").join("D", on="g").join("D", on="g").run()


def test_hash_join_null_keys_never_match():
    left = RowsOp(("a", "k"), [(1, 1), (2, None), (3, 2)])
    right = RowsOp(("k2", "b"), [(1, 10), (None, 20), (2, 30)])
    for build_left in (True, False):
        op = HashJoinOp(left, right, ["k"], ["k2"], build_left=build_left)
        assert sorted(op.rows()) == [(1, 1, 1, 10), (3, 2, 2, 30)]


def test_join_ordering_prefers_small_table():
    store = RodentStore(page_size=1024, pool_capacity=64)
    store.create_table("Big", Schema.of("k:int", "v:int"))
    store.load("Big", [(i % 40, i) for i in range(800)])
    store.create_table("Small", Schema.of("k2:int", "w:int"))
    store.load("Small", [(i, i * 2) for i in range(10)])
    explain = (
        Q(store, "Big").join("Small", on=("k", "k2")).explain()
    )
    joins = [
        op
        for op in _walk(explain.root)
        if isinstance(op, HashJoinOp)
    ]
    assert len(joins) == 1
    # The estimated-smaller side is the hash build side.
    assert joins[0].build_left is False
    assert "build=right" in str(explain)


def _walk(op):
    yield op
    for child in op.inputs():
        yield from _walk(child)


# ---------------------------------------------------------------------------
# satellite fixes: order_by prefix, count(field) nulls
# ---------------------------------------------------------------------------


def test_order_by_strips_single_prefix_only(join_store):
    assert Q(join_store, "T").order_by("-x").spec().order == (("x", False),)
    assert Q(join_store, "T").order_by("--x").spec().order == (("-x", False),)
    assert Q(join_store, "T").order_by("x").spec().order == (("x", True),)


def test_count_field_skips_none_values():
    src = RowsOp(
        ("g", "v"),
        [(1, 10), (1, None), (2, None), (2, None), (1, 5)],
    )
    op = GroupByOp(
        src,
        ("g",),
        (
            Aggregate("count", None, "all_rows"),
            Aggregate("count", "v", "nv"),
            Aggregate("sum", "v", "sv"),
            Aggregate("avg", "v", "av"),
            Aggregate("min", "v", "minv"),
            Aggregate("max", "v", "maxv"),
        ),
    )
    assert sorted(op.rows()) == [
        (1, 3, 2, 15, 7.5, 5, 10),
        (2, 2, 0, None, None, None, None),
    ]


# ---------------------------------------------------------------------------
# explain: plan tree with per-node cost/cardinality
# ---------------------------------------------------------------------------


def test_explain_renders_plan_tree(join_store):
    explain = (
        Q(join_store, "T")
        .join("D", on="g")
        .group_by("label")
        .agg(n="*")
        .explain()
    )
    text = str(explain)
    assert "HashJoin" in text
    assert "GroupBy" in text
    assert "TableScan" in text
    assert "rows≈" in text and "cost≈" in text
    assert explain.pages > 0  # numeric compatibility with the old API
    assert explain.ms > 0
    assert explain.est_rows > 0


def test_explain_reports_index_access_path():
    store = RodentStore(page_size=1024, pool_capacity=64)
    store.create_table("T", SCHEMA)
    table = store.load("T", make_records())
    table.create_index("t")
    q = Q(store, "T").where(Range("t", 0, 10))
    kind, cost = table.access_path(predicate=Range("t", 0, 10))
    assert kind == "index"
    assert "IndexScan" in str(q.explain())
    # The displayed path matches what the scan actually does.
    assert q.run() == reference_eval(
        table, QuerySpec(table="T", predicate=Range("t", 0, 10))
    )


def test_store_query_convenience(join_store):
    assert join_store.query("T").limit(3).run() == make_records()[:3]
