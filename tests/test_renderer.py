"""Tests for repro.layout.renderer (rendering and readback per layout)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.interpreter import AlgebraInterpreter
from repro.algebra.parser import parse
from repro.algebra.transforms import evaluate
from repro.errors import StorageError
from repro.layout.renderer import LayoutRenderer
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.types import Schema

SCHEMA = Schema.of("t:int", "lat:int", "lon:int", "id:int")
RECORDS = [(i, (i * 37) % 200, (i * 53) % 200, i % 5) for i in range(400)]


def render(expr_text, records=RECORDS, page_size=1024, schema=SCHEMA):
    interp = AlgebraInterpreter({"T": schema})
    plan = interp.compile(parse(expr_text))
    disk = DiskManager(page_size=page_size)
    pool = BufferPool(disk, capacity=128)
    renderer = LayoutRenderer(pool)
    evaluated = evaluate(plan.expr, {"T": (records, tuple(schema.names()))})
    layout = renderer.render(plan, evaluated)
    return renderer, layout


class TestRowsRendering:
    def test_roundtrip(self):
        renderer, layout = render("T")
        assert list(renderer.iter_rows(layout)) == RECORDS

    def test_extent_contiguous_and_chained(self):
        renderer, layout = render("T")
        ids = layout.extent.page_ids
        assert ids == list(range(ids[0], ids[0] + len(ids)))
        from repro.storage.page import SlottedPage

        for i, page_id in enumerate(ids):
            page = SlottedPage(1024, renderer.disk.read_page(page_id))
            expected_next = ids[i + 1] if i + 1 < len(ids) else -1
            assert page.next_page_id == expected_next

    def test_page_row_counts_sum(self):
        _, layout = render("T")
        assert sum(layout.page_row_counts) == len(RECORDS)

    def test_empty_table(self):
        renderer, layout = render("T", records=[])
        assert list(renderer.iter_rows(layout)) == []
        assert layout.row_count == 0
        assert layout.total_pages() == 1  # one empty page

    def test_ordered_layout_preserves_order(self):
        renderer, layout = render("orderby[lat](T)")
        rows = list(renderer.iter_rows(layout))
        assert rows == sorted(RECORDS, key=lambda r: r[1])

    def test_record_exceeding_page_rejected(self):
        schema = Schema.of("s:string")
        with pytest.raises(StorageError):
            render("T", records=[("x" * 5000,)], schema=schema)


class TestColumnsRendering:
    def test_single_field_groups(self):
        renderer, layout = render("columns(T)")
        assert len(layout.column_groups) == 4
        assert list(renderer.iter_column_group(layout, 1)) == [
            r[1] for r in RECORDS
        ]

    def test_multi_field_group(self):
        renderer, layout = render("columns[[lat, lon], [t], [id]](T)")
        pairs = list(renderer.iter_column_group(layout, 0))
        assert pairs == [(r[1], r[2]) for r in RECORDS]

    def test_chunks_cover_rows(self):
        _, layout = render("columns(T)")
        for group in layout.column_groups:
            if group.chunks:
                assert sum(rows for _, rows in group.chunks) == len(RECORDS)

    def test_compressed_column(self):
        renderer, layout = render("compress[varint; t](columns(T))")
        assert list(renderer.iter_column_group(layout, 0)) == [
            r[0] for r in RECORDS
        ]

    def test_compressed_column_fewer_pages(self):
        _, plain = render("columns[[t]](project[t](T))")
        _, packed = render("compress[varint; t](columns[[t]](project[t](T)))")
        assert packed.total_pages() <= plain.total_pages()

    def test_empty_columns(self):
        renderer, layout = render("columns(T)", records=[])
        assert list(renderer.iter_column_group(layout, 0)) == []


class TestGridRendering:
    EXPR = "grid[lat, lon],[50, 50](T)"

    def test_cells_partition_rows(self):
        renderer, layout = render(self.EXPR)
        got = []
        for entry in layout.cell_directory:
            got.extend(renderer.read_cell(layout, entry))
        assert sorted(got) == sorted(RECORDS)

    def test_directory_bounds_contain_members(self):
        renderer, layout = render(self.EXPR)
        for entry in layout.cell_directory:
            (lat_lo, lat_hi), (lon_lo, lon_hi) = entry.bounds
            for record in renderer.read_cell(layout, entry):
                assert lat_lo <= record[1] < lat_hi
                assert lon_lo <= record[2] < lon_hi

    def test_cells_overlapping_prunes(self):
        renderer, layout = render(self.EXPR)
        hits = layout.cells_overlapping({"lat": (0, 49), "lon": (0, 49)})
        assert 0 < len(hits) < len(layout.cell_directory)
        records = [
            r for e in hits for r in renderer.read_cell(layout, e)
        ]
        expected = [r for r in RECORDS if r[1] < 50 and r[2] < 50]
        got = [r for r in records if r[1] < 50 and r[2] < 50]
        assert sorted(got) == sorted(expected)

    def test_unbounded_dimension(self):
        _, layout = render(self.EXPR)
        hits = layout.cells_overlapping({"lat": (0, 49)})
        all_lon = {e.coord[1] for e in hits}
        assert len(all_lon) > 1  # lon unconstrained

    def test_delta_reconstruction(self):
        renderer, layout = render(
            "delta[lat, lon](grid[lat, lon],[50, 50](T))"
        )
        got = []
        for entry in layout.cell_directory:
            got.extend(renderer.read_cell(layout, entry))
        assert sorted((r[1], r[2]) for r in got) == sorted(
            (r[1], r[2]) for r in RECORDS
        )

    def test_delta_varint_smaller(self):
        _, plain = render("grid[lat, lon],[50, 50](project[lat, lon](T))")
        _, packed = render(
            "compress[varint; lat, lon](delta[lat, lon](zorder("
            "grid[lat, lon],[50, 50](project[lat, lon](T)))))"
        )
        assert packed.total_pages() < plain.total_pages()

    def test_zorder_directory_in_curve_order(self):
        from repro.curves.zorder import zorder_sort_key

        _, layout = render("zorder(grid[lat, lon],[50, 50](T))")
        coords = [e.coord for e in layout.cell_directory]
        keys = [zorder_sort_key(c) for c in coords]
        assert keys == sorted(keys)

    def test_pages_for_cells_sorted_unique(self):
        renderer, layout = render(self.EXPR)
        entries = layout.cell_directory[:5]
        pages = renderer.pages_for_cells(layout, entries)
        assert pages == sorted(set(pages))

    def test_cells_overlapping_requires_grid(self):
        _, layout = render("T")
        with pytest.raises(StorageError):
            layout.cells_overlapping({"lat": (0, 1)})


class TestFoldedRendering:
    def test_roundtrip(self):
        renderer, layout = render("fold[lat, lon; id](T)")
        folded = list(renderer.iter_folded(layout))
        assert len(folded) == 5  # distinct ids
        total = sum(len(row[-1]) for row in folded)
        assert total == len(RECORDS)

    def test_single_nest_field(self):
        renderer, layout = render("fold[lat; id](T)")
        folded = list(renderer.iter_folded(layout))
        assert all(isinstance(row[-1][0], int) for row in folded if row[-1])

    def test_large_groups_span_pages(self):
        # One giant group far larger than a page must still round-trip.
        records = [(i, i % 97, i % 89, 0) for i in range(2000)]
        renderer, layout = render("fold[lat, lon; id](T)", records=records)
        folded = list(renderer.iter_folded(layout))
        assert len(folded) == 1
        assert len(folded[0][-1]) == 2000


class TestArrayRendering:
    def test_matrix_roundtrip(self):
        renderer, layout = render("[[1, 2, 3], [4, 5, 6]]")
        assert list(renderer.iter_array_leaves(layout)) == [1, 2, 3, 4, 5, 6]
        assert layout.array_shape == (2, 3)

    def test_get_element_multidim(self):
        renderer, layout = render("[[1, 2, 3], [4, 5, 6]]")
        assert renderer.get_array_element(layout, (1, 2)) == 6
        assert renderer.get_array_element(layout, 0) == 1

    def test_get_element_bounds(self):
        renderer, layout = render("[[1, 2], [3, 4]]")
        with pytest.raises(StorageError):
            renderer.get_array_element(layout, (2, 0))
        with pytest.raises(StorageError):
            renderer.get_array_element(layout, (0, 0, 0))

    def test_float_leaves(self):
        renderer, layout = render("[[1.5, 2.5]]")
        assert list(renderer.iter_array_leaves(layout)) == [1.5, 2.5]

    def test_direct_offset_reads_one_page(self):
        records = [[float(i) for i in range(50)] for _ in range(40)]
        import json

        renderer, layout = render(str(records).replace("'", ""))
        renderer.pool.clear()
        renderer.disk.stats.reset()
        renderer.get_array_element(layout, (20, 10))
        assert renderer.disk.stats.page_reads == 1


class TestMirrorRendering:
    def test_both_replicas_present(self):
        renderer, layout = render("mirror(rows(T), columns(T))")
        assert [m.plan.kind for m in layout.mirrors] == ["rows", "columns"]
        assert layout.total_pages() == sum(
            m.total_pages() for m in layout.mirrors
        )


class TestStreamRanges:
    @given(
        st.integers(0, 3000),
        st.integers(1, 500),
    )
    @settings(max_examples=25, deadline=None)
    def test_read_stream_range_property(self, offset, length):
        # Build a grid layout and read arbitrary ranges of its stream.
        renderer, layout = render("grid[lat, lon],[50, 50](T)")
        total = sum(e.length for e in layout.cell_directory)
        offset = offset % max(1, total)
        length = min(length, total - offset)
        if length <= 0:
            return
        data = renderer._read_stream_range(layout, offset, length)
        assert len(data) == length
