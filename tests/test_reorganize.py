"""Tests for repro.optimizer.reorganize (eager / new-data-only / lazy)."""

import pytest

from repro.engine.database import RodentStore
from repro.optimizer.reorganize import Policy, ReorganizationManager
from repro.query.expressions import Range
from repro.types import Schema

SCHEMA = Schema.of("t:int", "lat:int", "lon:int", "id:int")
RECORDS = [(i, (i * 37) % 500, (i * 53) % 500, i % 7) for i in range(400)]
NEW_DESIGN = "grid[lat, lon],[100, 100](project[lat, lon](T))"


@pytest.fixture
def setup():
    store = RodentStore(page_size=1024, pool_capacity=64)
    store.create_table("T", SCHEMA)
    store.load("T", RECORDS)
    manager = ReorganizationManager(store)
    return store, manager


class TestEager:
    def test_rewrites_immediately(self, setup):
        store, manager = setup
        manager.set_policy("T", Policy.EAGER)
        manager.apply_design("T", NEW_DESIGN, source_records=RECORDS)
        assert store.table("T").plan.kind == "grid"
        assert manager.reorganizations == 1
        assert manager.pending("T") is None

    def test_pays_write_io_upfront(self, setup):
        store, manager = setup
        manager.set_policy("T", "eager")
        manager.apply_design("T", NEW_DESIGN, source_records=RECORDS)
        assert manager.reorganization_io.page_writes > 0

    def test_queries_fast_after(self, setup):
        store, manager = setup
        manager.set_policy("T", Policy.EAGER)
        _, io_before = store.run_cold(
            lambda: list(store.table("T").scan(predicate=Range("lat", 0, 99)))
        )
        manager.apply_design("T", NEW_DESIGN, source_records=RECORDS)
        _, io_after = store.run_cold(
            lambda: list(store.table("T").scan(predicate=Range("lat", 0, 99)))
        )
        assert io_after.page_reads < io_before.page_reads


class TestNewDataOnly:
    def test_old_data_untouched(self, setup):
        store, manager = setup
        manager.set_policy("T", Policy.NEW_DATA_ONLY)
        manager.apply_design("T", NEW_DESIGN, source_records=RECORDS)
        assert store.table("T").plan.kind == "rows"  # old layout remains
        assert manager.pending("T") is not None
        assert manager.reorganizations == 0

    def test_access_never_triggers(self, setup):
        store, manager = setup
        manager.set_policy("T", Policy.NEW_DATA_ONLY)
        manager.apply_design("T", NEW_DESIGN, source_records=RECORDS)
        for _ in range(20):
            assert manager.on_access("T") is False
        assert store.table("T").plan.kind == "rows"


class TestLazy:
    def test_rewrite_after_access_threshold(self, setup):
        store, manager = setup
        manager.lazy_access_threshold = 3
        manager.set_policy("T", Policy.LAZY)
        manager.apply_design("T", NEW_DESIGN, source_records=RECORDS)
        assert store.table("T").plan.kind == "rows"
        triggered = [manager.on_access("T") for _ in range(3)]
        assert triggered == [False, False, True]
        assert store.table("T").plan.kind == "grid"

    def test_rewrite_when_overflow_grows(self, setup):
        store, manager = setup
        manager.lazy_overflow_fraction = 0.2
        manager.lazy_access_threshold = 10_000
        manager.set_policy("T", Policy.LAZY)
        manager.apply_design("T", NEW_DESIGN, source_records=None)
        table = store.table("T")
        table.insert(RECORDS[:150])  # 150/550 > 0.2
        table.flush_inserts()
        manager._states["T"].source_records = RECORDS + RECORDS[:150]
        assert manager.on_access("T") is True
        assert store.table("T").plan.kind == "grid"

    def test_background_step(self, setup):
        store, manager = setup
        manager.set_policy("T", Policy.LAZY)
        manager.apply_design("T", NEW_DESIGN, source_records=RECORDS)
        assert manager.step_background("T") is True
        assert store.table("T").plan.kind == "grid"
        assert manager.step_background("T") is False

    def test_no_pending_no_trigger(self, setup):
        _, manager = setup
        manager.set_policy("T", Policy.LAZY)
        assert manager.on_access("T") is False


class TestPolicyComparison:
    def test_eager_pays_more_write_io_than_lazy_unaccessed(self, setup):
        """The paper's trade-off: eager reorganization has up-front cost that
        deferred policies avoid until (unless) the rewrite happens."""
        store, manager = setup
        store.create_table("U", SCHEMA)
        store.load("U", RECORDS)

        manager.set_policy("T", Policy.EAGER)
        manager.apply_design(
            "T", NEW_DESIGN, source_records=RECORDS
        )
        eager_writes = manager.reorganization_io.page_writes

        lazy_manager = ReorganizationManager(store)
        lazy_manager.set_policy("U", Policy.LAZY)
        lazy_manager.apply_design(
            "U",
            "grid[lat, lon],[100, 100](project[lat, lon](U))",
            source_records=RECORDS,
        )
        assert lazy_manager.reorganization_io.page_writes == 0
        assert eager_writes > 0

    def test_policy_string_coercion(self, setup):
        _, manager = setup
        manager.set_policy("T", "lazy")
        assert manager._state("T").policy is Policy.LAZY
