"""Tests for repro.algebra.rewriter (normalization rules)."""

import pytest

from repro.algebra import ast
from repro.algebra.parser import parse
from repro.algebra.rewriter import normalize, structurally_equal
from repro.algebra.transforms import evaluate

T = [
    (2139, 617, 3),
    (2142, 617, 1),
    (10001, 212, 2),
    (2139, 617, 4),
]
TABLES = {"T": (T, ("zip", "area", "n"))}


def same_semantics(before: ast.Node, after: ast.Node) -> bool:
    """Both expressions evaluate to the same records (multiset)."""
    a = evaluate(before, TABLES)
    b = evaluate(after, TABLES)
    return sorted(map(tuple, a.records())) == sorted(map(tuple, b.records()))


class TestRules:
    def test_double_transpose_cancels(self):
        expr = parse("transpose(transpose(T))")
        assert normalize(expr) == parse("T")

    def test_double_zorder_collapses(self):
        expr = parse("zorder(zorder(grid[zip, area],[10, 10](T)))")
        assert normalize(expr) == normalize(
            parse("zorder(grid[zip, area],[10, 10](T))")
        )

    def test_double_rows_collapses(self):
        assert normalize(parse("rows(rows(T))")) == parse("rows(T)")

    def test_selects_merge(self):
        expr = parse("select[r.zip > 2000](select[r.area = 617](T))")
        normalized = normalize(expr)
        assert isinstance(normalized, ast.Select)
        assert isinstance(normalized.child, ast.TableRef)
        assert same_semantics(expr, normalized)

    def test_projects_collapse_when_subset(self):
        expr = parse("project[zip](project[zip, area](T))")
        assert normalize(expr) == parse("project[zip](T)")

    def test_projects_keep_when_not_subset(self):
        expr = parse("project[zip, area](project[zip](T))")
        normalized = normalize(expr)
        # Not a subset: inner project already dropped 'area'.
        assert isinstance(normalized, ast.Project)
        assert isinstance(normalized.child, ast.Project)

    def test_limits_take_min(self):
        expr = parse("limit[5](limit[2](T))")
        assert normalize(expr) == parse("limit[2](T)")
        expr = parse("limit[1](limit[9](T))")
        assert normalize(expr) == parse("limit[1](T)")

    def test_outer_orderby_wins(self):
        expr = parse("orderby[zip](orderby[area](T))")
        assert normalize(expr) == parse("orderby[zip](T)")

    def test_unfold_fold_becomes_project(self):
        expr = parse("unfold(fold[zip, n; area](T))")
        normalized = normalize(expr)
        assert normalized == parse("project[area, zip, n](T)")

    def test_select_pushed_below_orderby(self):
        expr = parse("select[r.area = 617](orderby[zip](T))")
        normalized = normalize(expr)
        assert isinstance(normalized, ast.OrderBy)
        assert isinstance(normalized.child, ast.Select)
        assert same_semantics(expr, normalized)

    def test_select_pushed_below_project_when_fields_available(self):
        expr = parse("select[r.zip > 2000](project[zip, area](T))")
        normalized = normalize(expr)
        assert isinstance(normalized, ast.Project)
        assert isinstance(normalized.child, ast.Select)
        assert same_semantics(expr, normalized)

    def test_select_not_pushed_when_field_dropped(self):
        expr = parse("select[r.zip > 2000](project[zip](T))")
        normalized = normalize(expr)
        # Condition reads zip which survives; this one CAN push.
        assert isinstance(normalized, ast.Project)

    def test_select_blocked_by_missing_field(self):
        # Artificial: condition uses a field the projection dropped. The
        # original expression is ill-typed anyway; rewrite must not "fix" it.
        expr = ast.Select(
            ast.Project(ast.table("T"), ("zip",)),
            ast.Comparison(">", ast.FieldRef("area"), ast.Const(0)),
        )
        normalized = normalize(expr)
        assert isinstance(normalized, ast.Select)


class TestNormalizeFixpoint:
    @pytest.mark.parametrize(
        "text",
        [
            "T",
            "zorder(grid[zip, area],[10, 10](T))",
            "project[zip](select[r.area = 617](T))",
            "columns[[zip], [area, n]](T)",
            "fold[zip; area](T)",
            "mirror(rows(T), columns(T))",
        ],
    )
    def test_idempotent(self, text):
        once = normalize(parse(text))
        assert normalize(once) == once

    def test_deep_chain(self):
        expr = parse(
            "transpose(transpose(select[r.zip > 0](select[r.area > 0]"
            "(limit[9](limit[3](T))))))"
        )
        normalized = normalize(expr)
        assert isinstance(normalized, ast.Select)
        assert isinstance(normalized.child, ast.Limit)
        assert normalized.child.count == 3

    def test_semantics_preserved_on_chain(self):
        expr = parse(
            "select[r.zip > 2000](select[r.area = 617](orderby[zip](T)))"
        )
        assert same_semantics(expr, normalize(expr))


class TestStructurallyEqual:
    def test_equal_after_rewrites(self):
        a = parse("transpose(transpose(T))")
        b = parse("T")
        assert structurally_equal(a, b)

    def test_different_expressions(self):
        assert not structurally_equal(parse("rows(T)"), parse("columns(T)"))
