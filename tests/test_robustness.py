"""Failure injection and stress cases across the storage stack."""

import pytest

from repro.engine.database import RodentStore
from repro.errors import PageError, QueryError, StorageError
from repro.query.expressions import Range, Rect
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.page import BytePage, SlottedPage
from repro.types import Schema

SCHEMA = Schema.of("t:int", "x:int", "y:int", "g:int")
RECORDS = [(i, (i * 37) % 300, (i * 53) % 300, i % 5) for i in range(800)]


class TestCorruption:
    def test_corrupt_magic_detected(self):
        page = SlottedPage(512)
        page.insert(b"data")
        page.buffer[0] = 0xFF  # clobber magic
        with pytest.raises(PageError):
            SlottedPage(512, page.buffer)

    def test_wrong_page_type_detected(self):
        byte_page = BytePage(512)
        byte_page.write(b"payload")
        with pytest.raises(PageError):
            SlottedPage(512, byte_page.buffer)
        slotted = SlottedPage(512)
        with pytest.raises(PageError):
            BytePage(512, slotted.buffer)

    def test_corrupted_data_page_surfaces_on_scan(self):
        store = RodentStore(page_size=1024, pool_capacity=16)
        store.create_table("T", SCHEMA)
        table = store.load("T", RECORDS)
        victim = table.layout.extent.page_ids[1]
        store.disk.write_page(victim, bytearray(1024))  # zero the page
        with pytest.raises(PageError):
            list(table.scan())


class TestTinyBufferPool:
    """Every layout must scan correctly with a near-minimal pool."""

    @pytest.mark.parametrize(
        "layout",
        [
            "T",
            "columns(T)",
            "zorder(grid[x, y],[50, 50](T))",
            "fold[t, x, y; g](T)",
            "mirror(rows(T), columns(T))",
        ],
    )
    def test_scan_with_four_frames(self, layout):
        store = RodentStore(page_size=1024, pool_capacity=4)
        store.create_table("T", SCHEMA, layout=layout)
        table = store.load("T", RECORDS)
        fields = table.scan_schema().names()
        index = {f: i for i, f in enumerate(fields)}
        order = [index[f] for f in SCHEMA.names()]
        got = sorted(tuple(r[i] for i in order) for r in table.scan())
        assert got == sorted(RECORDS)

    def test_grid_query_with_two_frames(self):
        store = RodentStore(page_size=1024, pool_capacity=2)
        store.create_table(
            "T", SCHEMA, layout="grid[x, y],[50, 50](T)"
        )
        table = store.load("T", RECORDS)
        q = Rect({"x": (0, 49), "y": (0, 49)})
        got = sorted(table.scan(predicate=q))
        want = sorted(r for r in RECORDS if r[1] <= 49 and r[2] <= 49)
        assert got == want


class TestPathologicalData:
    def test_all_records_in_one_grid_cell(self):
        records = [(i, 5, 5, 0) for i in range(500)]
        store = RodentStore(page_size=1024, pool_capacity=32)
        store.create_table("T", SCHEMA, layout="grid[x, y],[100, 100](T)")
        table = store.load("T", records)
        assert len(table.layout.cell_directory) == 1
        assert sorted(table.scan()) == sorted(records)

    def test_every_record_its_own_cell(self):
        records = [(i, i * 200, i * 200, 0) for i in range(60)]
        store = RodentStore(page_size=1024, pool_capacity=32)
        store.create_table("T", SCHEMA, layout="grid[x, y],[100, 100](T)")
        table = store.load("T", records)
        assert len(table.layout.cell_directory) == 60
        assert sorted(table.scan()) == sorted(records)

    def test_negative_coordinates_grid(self):
        records = [(i, -250 + i, -300 + 2 * i, 0) for i in range(200)]
        store = RodentStore(page_size=1024, pool_capacity=32)
        store.create_table(
            "T", SCHEMA, layout="zorder(grid[x, y],[40, 40](T))"
        )
        table = store.load("T", records)
        q = Rect({"x": (-200, -100), "y": (-250, -50)})
        got = sorted(table.scan(predicate=q))
        want = sorted(
            r for r in records if -200 <= r[1] <= -100 and -250 <= r[2] <= -50
        )
        assert got == want

    def test_single_record_table(self):
        store = RodentStore(page_size=1024)
        store.create_table("T", SCHEMA, layout="columns(T)")
        table = store.load("T", [RECORDS[0]])
        assert list(table.scan()) == [RECORDS[0]]
        assert table.get_element(0) == RECORDS[0]

    def test_duplicate_records_preserved(self):
        records = [RECORDS[0]] * 50
        store = RodentStore(page_size=1024)
        store.create_table("T", SCHEMA, layout="fold[t, x, y; g](T)")
        table = store.load("T", records)
        assert len(list(table.scan())) == 50

    def test_wide_string_records(self):
        schema = Schema.of("k:int", "payload:string")
        records = [(i, "x" * 300) for i in range(50)]
        store = RodentStore(page_size=1024)
        store.create_table("T", schema)
        table = store.load("T", records)
        assert list(table.scan()) == records

    def test_extreme_int_values(self):
        records = [
            (0, 2**62, -(2**62), 0),
            (1, -(2**62), 2**62, 1),
        ]
        store = RodentStore(page_size=1024)
        store.create_table("T", SCHEMA, layout="columns(T)")
        table = store.load("T", records)
        assert sorted(table.scan()) == sorted(records)


class TestFileBackedEndToEnd:
    def test_grid_layout_on_disk_file(self, tmp_path):
        store = RodentStore(
            path=str(tmp_path / "db.pages"), page_size=1024, pool_capacity=16
        )
        store.create_table(
            "T", SCHEMA,
            layout="compress[varint; x, y](delta[x, y](zorder("
                   "grid[x, y],[50, 50](T))))",
        )
        table = store.load("T", RECORDS)
        store.pool.flush_all()
        q = Rect({"x": (0, 99), "y": (0, 99)})
        got = sorted(table.scan(predicate=q))
        want = sorted(
            (r[0], r[1], r[2], r[3])
            for r in RECORDS
            if r[1] <= 99 and r[2] <= 99
        )
        assert got == want
        store.close()

    def test_reopen_disk_without_catalog_is_raw_pages(self, tmp_path):
        path = str(tmp_path / "db.pages")
        store = RodentStore(path=path, page_size=1024)
        store.create_table("T", SCHEMA)
        store.load("T", RECORDS[:50])
        store.close()
        disk = DiskManager(path, page_size=1024)
        assert disk.num_pages > 0  # pages persist even without the catalog
        disk.close()


class TestConcurrentlyPinnedScan:
    def test_interleaved_scans_share_pool(self):
        store = RodentStore(page_size=1024, pool_capacity=8)
        store.create_table("T", SCHEMA)
        table = store.load("T", RECORDS)
        a = table.scan()
        b = table.scan(fieldlist=["t"])
        out_a, out_b = [], []
        for _ in range(200):
            out_a.append(next(a))
            out_b.append(next(b))
        assert out_a == RECORDS[:200]
        assert out_b == [(r[0],) for r in RECORDS[:200]]
