"""Tests for repro.storage.serializer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.storage.serializer import RecordSerializer, VectorSerializer
from repro.types import BOOL, BYTES, FLOAT, INT, STRING, Schema

MIXED = Schema.of("a:int", "b:float", "c:string", "d:bool")


class TestRecordSerializer:
    def test_roundtrip_mixed(self):
        s = RecordSerializer(MIXED)
        record = (42, 3.25, "hello", True)
        assert s.decode(s.encode(record)) == record

    def test_roundtrip_empty_string(self):
        s = RecordSerializer(MIXED)
        record = (0, 0.0, "", False)
        assert s.decode(s.encode(record)) == record

    def test_roundtrip_unicode(self):
        s = RecordSerializer(MIXED)
        record = (1, -1.5, "héllo wörld ✓", False)
        assert s.decode(s.encode(record)) == record

    def test_nulls_roundtrip(self):
        s = RecordSerializer(MIXED)
        record = (None, 2.0, None, None)
        assert s.decode(s.encode(record)) == record

    def test_all_null(self):
        s = RecordSerializer(MIXED)
        record = (None, None, None, None)
        assert s.decode(s.encode(record)) == record

    def test_arity_mismatch(self):
        s = RecordSerializer(MIXED)
        with pytest.raises(SerializationError):
            s.encode((1, 2.0))

    def test_int_overflow(self):
        s = RecordSerializer(Schema.of("a:int"))
        with pytest.raises(SerializationError):
            s.encode((2**63,))

    def test_bool_rejected_in_int_field(self):
        s = RecordSerializer(Schema.of("a:int"))
        with pytest.raises(SerializationError):
            s.encode((True,))

    def test_decode_truncated(self):
        s = RecordSerializer(MIXED)
        data = s.encode((1, 2.0, "abc", True))
        with pytest.raises(SerializationError):
            s.decode(data[:5])

    def test_decode_truncated_var_payload(self):
        s = RecordSerializer(Schema.of("c:string"))
        data = s.encode(("hello",))
        with pytest.raises(SerializationError):
            s.decode(data[:-2])

    def test_encoded_size_matches(self):
        s = RecordSerializer(MIXED)
        for record in [(1, 2.0, "xyz", True), (None, None, "", False)]:
            assert s.encoded_size(record) == len(s.encode(record))

    def test_decode_prefix_tolerates_trailing_bytes(self):
        # Folded rendering decodes a key record from the front of a blob.
        s = RecordSerializer(Schema.of("a:int"))
        data = s.encode((7,)) + b"trailing"
        assert s.decode(data) == (7,)

    def test_float_coercion_on_encode(self):
        s = RecordSerializer(Schema.of("b:float"))
        assert s.decode(s.encode((2,))) == (2.0,)

    @given(
        st.tuples(
            st.integers(min_value=-(2**63), max_value=2**63 - 1),
            st.floats(allow_nan=False, allow_infinity=False, width=64),
            st.text(max_size=50),
            st.booleans(),
        )
    )
    def test_roundtrip_property(self, record):
        s = RecordSerializer(MIXED)
        assert s.decode(s.encode(record)) == record

    @given(
        st.lists(
            st.one_of(
                st.none(),
                st.integers(min_value=-(2**31), max_value=2**31),
            ),
            min_size=3,
            max_size=3,
        )
    )
    def test_roundtrip_nullable_ints(self, values):
        s = RecordSerializer(Schema.of("a:int", "b:int", "c:int"))
        record = tuple(values)
        assert s.decode(s.encode(record)) == record


class TestVectorSerializer:
    def test_int_roundtrip(self):
        v = VectorSerializer(INT)
        values = [1, -5, 2**40, 0]
        assert v.decode(v.encode(values)) == values

    def test_float_roundtrip(self):
        v = VectorSerializer(FLOAT)
        values = [1.5, -2.25, 0.0]
        assert v.decode(v.encode(values)) == values

    def test_string_roundtrip(self):
        v = VectorSerializer(STRING)
        values = ["a", "", "longer string", "ünïcode"]
        assert v.decode(v.encode(values)) == values

    def test_bytes_roundtrip(self):
        v = VectorSerializer(BYTES)
        values = [b"\x00\x01", b"", b"abc"]
        assert v.decode(v.encode(values)) == values

    def test_empty_vector(self):
        v = VectorSerializer(INT)
        assert v.decode(v.encode([])) == []

    def test_encoded_size(self):
        v = VectorSerializer(INT)
        assert v.encoded_size([1, 2, 3]) == len(v.encode([1, 2, 3]))
        s = VectorSerializer(STRING)
        assert s.encoded_size(["ab", "c"]) == len(s.encode(["ab", "c"]))

    def test_truncated(self):
        v = VectorSerializer(INT)
        data = v.encode([1, 2, 3])
        with pytest.raises(SerializationError):
            v.decode(data[:10])
        with pytest.raises(SerializationError):
            v.decode(b"\x01")

    @given(st.lists(st.integers(min_value=-(2**63), max_value=2**63 - 1),
                    max_size=100))
    def test_int_roundtrip_property(self, values):
        v = VectorSerializer(INT)
        assert v.decode(v.encode(values)) == values

    @given(st.lists(st.text(max_size=20), max_size=50))
    def test_string_roundtrip_property(self, values):
        v = VectorSerializer(STRING)
        assert v.decode(v.encode(values)) == values

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False),
                    max_size=50))
    def test_float_roundtrip_property(self, values):
        v = VectorSerializer(FLOAT)
        assert v.decode(v.encode(values)) == values

    def test_bool_vector(self):
        v = VectorSerializer(BOOL)
        values = [True, False, True]
        assert v.decode(v.encode(values)) == values
