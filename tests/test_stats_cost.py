"""Tests for repro.engine.stats and repro.engine.cost."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.cost import CostEstimate, CostModel, estimate
from repro.engine.stats import FieldStats, TableStats
from repro.storage.disk import IOStats
from repro.types import Schema

SCHEMA = Schema.of("a:int", "b:float", "s:string")
RECORDS = [(i, i * 0.5, f"name{i % 10}") for i in range(1000)]


class TestTableStats:
    def test_row_count_and_minmax(self):
        stats = TableStats.collect(SCHEMA, RECORDS)
        assert stats.row_count == 1000
        assert stats.fields["a"].min_value == 0
        assert stats.fields["a"].max_value == 999
        assert stats.fields["b"].max_value == pytest.approx(499.5)

    def test_distinct_counts(self):
        stats = TableStats.collect(SCHEMA, RECORDS)
        assert stats.fields["a"].distinct == 1000
        assert stats.fields["s"].distinct == 10

    def test_nulls_tracked(self):
        records = [(1, None, "x"), (2, 2.0, None), (None, None, "y")]
        stats = TableStats.collect(SCHEMA, records)
        assert stats.fields["a"].nulls == 1
        assert stats.fields["b"].nulls == 2
        assert stats.fields["s"].nulls == 1

    def test_avg_record_width_positive(self):
        stats = TableStats.collect(SCHEMA, RECORDS)
        assert stats.avg_record_width > 16  # two numerics + string

    def test_empty_table(self):
        stats = TableStats.collect(SCHEMA, [])
        assert stats.row_count == 0
        assert stats.fields["a"].min_value is None
        assert stats.predicate_selectivity({"a": (0, 10)}) == 1.0

    def test_histogram_built_for_numeric(self):
        stats = TableStats.collect(SCHEMA, RECORDS)
        assert sum(stats.fields["a"].histogram) == 1000
        assert stats.fields["s"].histogram == []

    def test_constant_field_no_histogram(self):
        records = [(5, 1.0, "x")] * 20
        stats = TableStats.collect(SCHEMA, records)
        assert stats.fields["a"].histogram == []
        assert stats.fields["a"].selectivity(5, 5) == 1.0
        assert stats.fields["a"].selectivity(6, 7) == 0.0


class TestSelectivity:
    def test_uniform_data_proportional(self):
        stats = TableStats.collect(SCHEMA, RECORDS)
        sel = stats.fields["a"].selectivity(0, 99)
        assert sel == pytest.approx(0.1, abs=0.03)

    def test_full_range_is_one(self):
        stats = TableStats.collect(SCHEMA, RECORDS)
        assert stats.fields["a"].selectivity(0, 999) == pytest.approx(1.0, abs=0.01)

    def test_disjoint_range_is_zero(self):
        stats = TableStats.collect(SCHEMA, RECORDS)
        assert stats.fields["a"].selectivity(5000, 6000) == pytest.approx(
            0.0, abs=0.01
        )

    def test_skewed_data_histogram_beats_uniform(self):
        # 90% of values in [0, 10), 10% in [10, 1000).
        records = [(i % 10, 0.0, "x") for i in range(900)]
        records += [(10 + i, 0.0, "x") for i in range(100)]
        stats = TableStats.collect(SCHEMA, records)
        sel = stats.fields["a"].selectivity(0, 9)
        assert sel > 0.5  # uniform model would say ~0.09

    def test_predicate_selectivity_independence(self):
        stats = TableStats.collect(SCHEMA, RECORDS)
        # a in [0, 499] covers half; b in [0, 124.75] covers a quarter;
        # independence multiplies to one eighth.
        combined = stats.predicate_selectivity(
            {"a": (0, 499), "b": (0, 124.75)}
        )
        assert combined == pytest.approx(0.125, abs=0.03)

    def test_unknown_field_ignored(self):
        stats = TableStats.collect(SCHEMA, RECORDS)
        assert stats.predicate_selectivity({"zzz": (0, 1)}) == 1.0

    @given(
        st.integers(0, 999), st.integers(0, 999)
    )
    def test_selectivity_bounded(self, x, y):
        stats = TableStats.collect(SCHEMA, RECORDS)
        lo, hi = min(x, y), max(x, y)
        sel = stats.fields["a"].selectivity(lo, hi)
        assert 0.0 <= sel <= 1.0


class TestCostModel:
    def test_cost_components(self):
        model = CostModel(page_size=1_000_000, seek_ms=4.0,
                          bandwidth_mb_per_s=50.0)
        # 1 MB page at 50 MB/s = 20 ms transfer.
        assert model.transfer_ms(1) == pytest.approx(20.0)
        assert model.cost_ms(1, 1) == pytest.approx(24.0)

    def test_seek_dominates_small_reads(self):
        model = CostModel(page_size=4096)
        random_io = model.cost_ms(10, 10)
        sequential = model.cost_ms(10, 1)
        assert random_io > sequential * 2

    def test_cost_of_iostats(self):
        model = CostModel(page_size=4096)
        stats = IOStats(page_reads=100, read_seeks=5)
        assert model.cost_of(stats) == model.cost_ms(100, 5)

    def test_estimate_helper(self):
        model = CostModel(page_size=4096)
        cost = estimate(model, 10, 2)
        assert cost.pages == 10
        assert cost.seeks == 2
        assert cost.ms == model.cost_ms(10, 2)

    def test_cost_addition(self):
        a = CostEstimate(1, 1, 5.0)
        b = CostEstimate(2, 0, 3.0)
        combined = a + b
        assert combined.pages == 3
        assert combined.seeks == 1
        assert combined.ms == 8.0
        assert CostEstimate.zero().pages == 0

    @given(st.integers(0, 10**6), st.integers(0, 10**4))
    def test_cost_monotone(self, pages, seeks):
        model = CostModel(page_size=4096)
        base = model.cost_ms(pages, seeks)
        assert model.cost_ms(pages + 1, seeks) >= base
        assert model.cost_ms(pages, seeks + 1) >= base
