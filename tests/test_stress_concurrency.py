"""Threaded stress: N writers x M scanners under MVCC snapshots.

Invariants checked while writers mutate the table as fast as they can:

* **Snapshot isolation** — every scan sees an atomic state: the two
  "bank account" rows always sum to their invariant total (a transfer is
  one transaction), and inserted row pairs appear both-or-neither.
* **No lost updates** — per-table strict two-phase locking serializes
  writers, so every one of the N x K increments of the shared counter row
  lands: the final value is exactly N x K.
* **Durability** — after the storm, an unclean close + reopen recovers
  exactly the final committed state.
"""

import os
import threading

import pytest

from repro.engine.database import RodentStore
from repro.errors import StorageError
from repro.query.expressions import Range
from repro.types import Schema

SCHEMA = Schema.of("id:int", "val:int")

N_WRITERS = int(os.environ.get("STRESS_WRITERS", "3"))
N_SCANNERS = int(os.environ.get("STRESS_SCANNERS", "3"))
N_ROUNDS = int(os.environ.get("STRESS_ROUNDS", "12"))

TOTAL = 1_000  # invariant sum of the two account rows (ids 1 and 2)
BASE_ROWS = [(0, 0), (1, TOTAL), (2, 0)] + [
    (10 + i, i) for i in range(60)
]


@pytest.fixture
def stress_store(tmp_path):
    store = RodentStore(
        str(tmp_path / "db.pages"), page_size=1024, pool_capacity=128,
        durable=True,
    )
    store.create_table("T", SCHEMA)
    store.load("T", BASE_ROWS)
    yield store
    if not store._closed:
        store.close()


def test_writers_vs_scanners(stress_store):
    store = stress_store
    table = store.table("T")
    errors: list[str] = []
    stop = threading.Event()

    def writer(wid: int):
        try:
            for round_no in range(N_ROUNDS):
                # increment the shared counter row (lost-update probe)
                table.update(
                    {"val": lambda r: r["val"] + 1}, Range("id", 0, 0)
                )
                # transfer between the two account rows (atomicity probe)
                delta = (wid + round_no) % 7 + 1
                table.update(
                    {
                        "val": lambda r, d=delta: (
                            r["val"] - d if r["id"] == 1 else r["val"] + d
                        )
                    },
                    Range("id", 1, 2),
                )
                # insert a pair of rows in one transaction
                base = 1000 + wid * 10_000 + round_no * 2
                table.insert([(base, wid), (base + 1, wid)])
        except Exception as exc:  # noqa: BLE001 - report into main thread
            errors.append(f"writer {wid}: {exc!r}")

    def scanner(sid: int):
        try:
            while not stop.is_set():
                rows = dict(table.scan(predicate=Range("id", 1, 2)))
                if set(rows) != {1, 2}:
                    errors.append(f"scanner {sid}: saw accounts {rows}")
                elif rows[1] + rows[2] != TOTAL:
                    errors.append(
                        f"scanner {sid}: torn transfer {rows}"
                    )
                inserted = [
                    r for r in table.scan() if 1000 <= r[0] < 100_000
                ]
                if len(inserted) % 2:
                    errors.append(
                        f"scanner {sid}: torn insert pair "
                        f"({len(inserted)} rows)"
                    )
        except Exception as exc:  # noqa: BLE001
            errors.append(f"scanner {sid}: {exc!r}")

    writers = [
        threading.Thread(target=writer, args=(w,)) for w in range(N_WRITERS)
    ]
    scanners = [
        threading.Thread(target=scanner, args=(s,))
        for s in range(N_SCANNERS)
    ]
    for t in writers + scanners:
        t.start()
    for t in writers:
        t.join(timeout=120)
    stop.set()
    for t in scanners:
        t.join(timeout=30)

    assert not errors, errors[:5]

    # no lost updates: every increment landed
    final = dict(table.scan(predicate=Range("id", 0, 2)))
    assert final[0] == N_WRITERS * N_ROUNDS
    assert final[1] + final[2] == TOTAL
    # every inserted pair is present
    inserted = [r for r in table.scan() if 1000 <= r[0] < 100_000]
    assert len(inserted) == N_WRITERS * N_ROUNDS * 2

    # unclean close + reopen recovers exactly the final committed state
    want = sorted(table.scan())
    path = store.disk.path
    try:
        store.wal.close()
    except StorageError:
        pass
    store.disk.close()
    store._closed = True

    reopened = RodentStore(
        path, page_size=1024, pool_capacity=128, durable=True
    )
    assert reopened.recovery_summary["clean"] is False
    assert sorted(reopened.table("T").scan()) == want
    reopened.close()
