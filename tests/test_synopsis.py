"""Zone-map synopses: pruning equivalence, I/O savings, explain, persistence.

The invariant under test: enabling zone-map pruning (``store.zone_pruning``)
never changes what a scan returns — values and order — for any layout kind,
including overflow regions and in-memory pending rows; it only changes how
many pages the scan touches. ``Table.scan_reference`` stays entirely
zone-map-free, so it doubles as the oracle.
"""

import pytest

from repro.engine.database import RodentStore
from repro.engine.stats import zone_survival_fraction
from repro.engine.synopsis import (
    FieldZone,
    ZoneSynopsis,
    predicate_intervals,
    zone_may_match,
)
from repro.query.expressions import And, Not, Or, Range, Rect
from repro.types import Schema

SCHEMA = Schema.of("t:int", "x:int", "y:int", "g:int")

#: Every layout kind, mirroring tests/test_batch_scan.py, so pruning is
#: exercised against rows, sorted rows, delta rows, pure/grouped/compressed
#: columns, mirrors, grids (plain and delta-compressed), folds, and arrays.
LAYOUTS = {
    "rows": "T",
    "rows_sorted": "orderby[t](T)",
    "rows_delta": "delta[t](orderby[t](T))",
    "columns": "columns(T)",
    "grouped": "columns[[t, g], [x, y]](T)",
    "columns_lz": "compress[lz](columns(T))",
    "mirror": "mirror(rows(T), columns(T))",
    "grid": "grid[x, y],[25, 25](T)",
    "grid_zorder_delta": (
        "compress[varint; x, y](delta[x, y](zorder(grid[x, y],[25, 25](T))))"
    ),
    "folded": "fold[t, x, y; g](T)",
    "array": "transpose(project[x, y](T))",
}


def make_records(n=220):
    return [
        (i, (i * 7) % 53 - 26, (i * i) % 41, i % 5)
        for i in range(n)
    ]


def predicates_for(table):
    names = set(table.scan_schema().names())
    if names == {"value"}:
        return [Range("value", 5, 25), Range("value", 9999, 10000)]
    cases = [
        Range("t", 0, 10),
        Range("t", 100, 150),
        Range("t", 5000, 6000),  # empty result: every zone pruned
        Range("x", -5, 5),
        Rect({"x": (-5, 15), "y": (3, 30)}),
        And(Range("t", 20, 200), Not(Range("g", 2, 2))),
        Or(Range("t", 0, 5), Range("t", 210, 400)),
    ]
    return [p for p in cases if p.fields_used() <= names]


@pytest.fixture(scope="module")
def tables():
    out = {}
    for name, layout in LAYOUTS.items():
        store = RodentStore(page_size=1024, pool_capacity=64)
        store.create_table("T", SCHEMA, layout=layout)
        out[name] = (store, store.load("T", make_records()))
    return out


@pytest.mark.parametrize("layout", sorted(LAYOUTS))
def test_pruned_scan_equals_unpruned_and_reference(tables, layout):
    store, table = tables[layout]
    for predicate in predicates_for(table):
        for fieldlist in (None, sorted(predicate.fields_used())):
            ref = list(table.scan_reference(fieldlist, predicate=predicate))
            store.zone_pruning = True
            pruned = list(table.scan(fieldlist, predicate=predicate))
            store.zone_pruning = False
            unpruned = list(table.scan(fieldlist, predicate=predicate))
            store.zone_pruning = True
            assert pruned == unpruned == ref, (layout, predicate, fieldlist)


@pytest.mark.parametrize("layout", ["rows", "columns", "grid", "folded"])
def test_pruning_equivalence_with_overflow_and_pending(layout):
    store = RodentStore(page_size=1024, pool_capacity=64)
    store.create_table("T", SCHEMA, layout=LAYOUTS[layout])
    table = store.load("T", make_records(150))
    table.insert([(1000 + i, i - 3, i, i % 5) for i in range(40)])
    table.flush_inserts()  # an on-disk overflow region (with its own zones)
    table.insert([(2000 + i, -i, 2 * i, i % 5) for i in range(17)])  # pending
    for predicate in (
        Range("t", 0, 20),
        Range("t", 1005, 1010),  # only overflow rows match
        Range("t", 2000, 2100),  # only pending rows match
        Range("t", 140, 1002),  # straddles main and overflow
        Range("x", -2, 2),
    ):
        ref = list(table.scan_reference(predicate=predicate))
        store.zone_pruning = True
        got = list(table.scan(predicate=predicate))
        assert got == ref, (layout, predicate)


@pytest.mark.parametrize("layout", ["rows", "columns", "grid", "folded"])
def test_pruned_scan_fetches_fewer_pages(layout):
    """Satellite: storage_stats shows pruned scans fetch fewer pool pages."""
    store = RodentStore(page_size=1024, pool_capacity=64)
    store.create_table("T", SCHEMA, layout=LAYOUTS[layout])
    # g is clustered (i // 150) so folded records cover disjoint t ranges;
    # interleaved groups would make every nested vector span all of t.
    table = store.load(
        "T",
        [(i, (i * 7) % 53 - 26, (i * i) % 41, i // 150) for i in range(600)],
    )
    predicate = Range("t", 0, 10)

    def cold_fetches(pruning):
        store.zone_pruning = pruning
        before = store.storage_stats()["buffer_pool"]["fetches"]
        store.pool.clear()
        count = sum(1 for _ in table.scan(predicate=predicate))
        after = store.storage_stats()["buffer_pool"]["fetches"]
        return count, after - before

    count_on, fetches_on = cold_fetches(True)
    count_off, fetches_off = cold_fetches(False)
    store.zone_pruning = True
    assert count_on == count_off == 11
    assert fetches_on < fetches_off, (layout, fetches_on, fetches_off)


def test_storage_stats_counters_move():
    store = RodentStore(page_size=1024, pool_capacity=8)
    store.create_table("T", SCHEMA)
    table = store.load("T", make_records(400))
    list(table.scan())
    stats = store.storage_stats()
    assert stats["buffer_pool"]["fetches"] > 0
    assert stats["disk"]["page_reads"] > 0
    assert stats["buffer_pool"]["evictions"] > 0  # tiny pool must evict
    assert 0.0 <= stats["buffer_pool"]["hit_rate"] <= 1.0


def test_pruned_pages_metadata_matches_io():
    """pruned_pages() is exact: total pages == pages read + pages pruned."""
    store = RodentStore(page_size=1024, pool_capacity=256)
    store.create_table("T", SCHEMA)
    table = store.load("T", make_records(600))
    predicate = Range("t", 0, 10)
    pruned = table.pruned_pages(predicate)
    assert pruned > 0
    _, io = store.run_cold(lambda: list(table.scan(predicate=predicate)))
    assert io.page_reads + pruned == table.layout.total_pages()
    # No predicate, disabled pruning, or unloaded metadata -> 0.
    assert table.pruned_pages(None) == 0
    store.zone_pruning = False
    assert table.pruned_pages(predicate) == 0


def test_explain_reports_pages_pruned():
    store = RodentStore(page_size=1024, pool_capacity=64)
    store.create_table("T", SCHEMA)
    store.load("T", make_records(600))
    plan = store.query("T").where(Range("t", 0, 10)).explain()
    rendered = str(plan)
    assert "pages_pruned=" in rendered
    assert plan.root.pages_pruned > 0
    # The scan-node cost reflects the skipped pages.
    full = store.query("T").explain()
    assert plan.pages < full.pages


def test_scan_cost_reflects_zone_pruning():
    store = RodentStore(page_size=1024, pool_capacity=64)
    store.create_table("T", SCHEMA)  # unsorted rows: zones only
    table = store.load("T", make_records(600))
    selective = table.scan_cost(predicate=Range("t", 0, 10))
    full = table.scan_cost()
    assert selective.pages < full.pages
    store.zone_pruning = False
    assert table.scan_cost(predicate=Range("t", 0, 10)).pages == full.pages


def test_pending_zone_skips_unmatching_pending_batch():
    store = RodentStore(page_size=1024, pool_capacity=64)
    store.create_table("T", SCHEMA)
    table = store.load("T", make_records(50))
    table.insert([(1000 + i, 0, 0, 0) for i in range(10)])
    # Predicate excludes every pending row; results must still be exact.
    got = list(table.scan(predicate=Range("t", 0, 20)))
    assert got == list(table.scan_reference(predicate=Range("t", 0, 20)))
    got = list(table.scan(predicate=Range("t", 1000, 1004)))
    assert [r[0] for r in got] == [1000, 1001, 1002, 1003, 1004]


def test_synopsis_survives_catalog_persistence(tmp_path):
    db = tmp_path / "db.pages"
    cat = tmp_path / "catalog.json"
    store = RodentStore(path=str(db), page_size=1024, pool_capacity=64)
    store.create_table("T", SCHEMA)
    table = store.load("T", make_records(600))
    predicate = Range("t", 0, 10)
    expected = list(table.scan(predicate=predicate))
    pruned = table.pruned_pages(predicate)
    store.save_catalog(str(cat))
    store.close()

    reopened = RodentStore.open(str(db), str(cat), page_size=1024)
    table2 = reopened.table("T")
    assert table2.layout.synopsis is not None
    assert table2.pruned_pages(predicate) == pruned
    assert list(table2.scan(predicate=predicate)) == expected
    _, io = reopened.run_cold(
        lambda: list(table2.scan(predicate=predicate))
    )
    assert io.page_reads < table2.layout.total_pages()


def test_next_resumes_after_get_element_batchwise():
    """Satellite: the cursor rebuild after get_element skips batch-wise and
    still yields exactly the rows after the access position."""
    store = RodentStore(page_size=1024, pool_capacity=64)
    store.create_table("T", SCHEMA)
    table = store.load("T", make_records(400))
    all_rows = list(table.scan())
    position = 137
    assert table.get_element(position) == all_rows[position]
    assert table.next() == all_rows[position + 1]
    assert table.next() == all_rows[position + 2]
    # Rebuild at the very end raises cleanly.
    table.get_element(399)
    from repro.errors import QueryError

    with pytest.raises(QueryError):
        table.next()


# ---------------------------------------------------------------------------
# unit tests of the pruning decision itself
# ---------------------------------------------------------------------------


def test_zone_may_match_semantics():
    zone = ZoneSynopsis(10, {"t": FieldZone(5, 20, 0, 8)})
    assert zone_may_match(zone, {"t": (0, 5)})  # touches min boundary
    assert zone_may_match(zone, {"t": (20, 30)})  # touches max boundary
    assert not zone_may_match(zone, {"t": (21, 30)})
    assert not zone_may_match(zone, {"t": (0, 4)})
    # Unknown field: conservative keep.
    assert zone_may_match(zone, {"other": (0, 1)})
    # Empty zone never matches.
    assert not zone_may_match(ZoneSynopsis(0, {}), {"t": (0, 1)})
    # All-null zone cannot satisfy a range; partially-null zones keep.
    all_null = ZoneSynopsis(3, {"t": FieldZone(None, None, 3, 0)})
    assert not zone_may_match(all_null, {"t": (0, 1)})
    some_null = ZoneSynopsis(3, {"t": FieldZone(None, None, 2, 0)})
    assert zone_may_match(some_null, {"t": (0, 1)})
    # Non-numeric min/max against numeric bounds: conservative keep.
    strings = ZoneSynopsis(3, {"t": FieldZone("a", "z", 0, 3)})
    assert zone_may_match(strings, {"t": (0, 1)})


def test_predicate_intervals_drop_unbounded():
    assert predicate_intervals(None) == {}
    assert predicate_intervals(Not(Range("t", 0, 1))) == {}
    got = predicate_intervals(And(Range("t", 0, 9), Range("x", 1, 2)))
    assert got == {"t": (0, 9), "x": (1, 2)}


def test_zone_survival_fraction_shape():
    assert zone_survival_fraction(0.0, 100) == 0.0
    assert zone_survival_fraction(1.0, 100) == 1.0
    mid = zone_survival_fraction(0.01, 100)
    assert 0.0 < mid < 1.0
    # More rows per zone -> more zones survive.
    assert zone_survival_fraction(0.01, 1000) > mid
