"""Tests for repro.engine.table — the paper §4.1 access-method API."""

import pytest

from repro.algebra.parser import parse
from repro.engine.database import RodentStore
from repro.engine.table import normalize_order, record_pipeline, structural_residual
from repro.errors import QueryError, StorageError
from repro.query.expressions import Range, Rect
from repro.types import Schema

SCHEMA = Schema.of("t:int", "lat:int", "lon:int", "id:int")
RECORDS = [(i, (i * 37) % 500, (i * 53) % 500, i % 7) for i in range(600)]


def make(layout=None, records=RECORDS, page_size=1024):
    store = RodentStore(page_size=page_size, pool_capacity=64)
    store.create_table("T", SCHEMA, layout=layout)
    table = store.load("T", records)
    return store, table


class TestScanBasics:
    def test_full_scan(self):
        _, table = make()
        assert list(table.scan()) == RECORDS

    def test_fieldlist_projection_order(self):
        _, table = make()
        out = list(table.scan(fieldlist=["lon", "t"]))
        assert out == [(r[2], r[0]) for r in RECORDS]

    def test_unknown_projection_field(self):
        _, table = make()
        with pytest.raises(QueryError):
            list(table.scan(fieldlist=["bogus"]))

    def test_predicate_filters(self):
        _, table = make()
        out = list(table.scan(predicate=Range("lat", 0, 99)))
        assert out == [r for r in RECORDS if r[1] <= 99]

    def test_predicate_with_projection(self):
        _, table = make()
        out = list(
            table.scan(fieldlist=["t"], predicate=Range("lat", 0, 99))
        )
        assert out == [(r[0],) for r in RECORDS if r[1] <= 99]

    def test_order_sorts(self):
        _, table = make()
        out = list(table.scan(order=["lat"]))
        assert [r[1] for r in out] == sorted(r[1] for r in RECORDS)

    def test_order_descending(self):
        _, table = make()
        out = list(table.scan(order=[("lat", False)]))
        assert [r[1] for r in out] == sorted(
            (r[1] for r in RECORDS), reverse=True
        )

    def test_stored_order_not_resorted(self):
        store, table = make(layout="orderby[t](T)")
        out = list(table.scan(order=["t"]))
        assert [r[0] for r in out] == sorted(r[0] for r in RECORDS)

    def test_scan_cost_rows_counts_extent(self):
        _, table = make()
        cost = table.scan_cost()
        assert cost.pages == table.layout.total_pages()
        assert cost.seeks == 1

    def test_row_count(self):
        _, table = make()
        assert table.row_count == len(RECORDS)


class TestColumnsLayout:
    LAYOUT = "columns[[t], [lat, lon], [id]](T)"

    def test_scan_matches_rows(self):
        _, table = make(self.LAYOUT)
        assert list(table.scan()) == RECORDS

    def test_narrow_scan_reads_fewer_pages(self):
        store, table = make(self.LAYOUT)
        _, io_narrow = store.run_cold(
            lambda: list(table.scan(fieldlist=["id"]))
        )
        _, io_wide = store.run_cold(lambda: list(table.scan()))
        assert io_narrow.page_reads < io_wide.page_reads

    def test_scan_cost_prunes_groups(self):
        _, table = make(self.LAYOUT)
        narrow = table.scan_cost(fieldlist=["id"])
        wide = table.scan_cost()
        assert narrow.pages < wide.pages

    def test_predicate_fields_force_group_read(self):
        store, table = make(self.LAYOUT)
        out, io = store.run_cold(
            lambda: list(
                table.scan(fieldlist=["id"], predicate=Range("lat", 0, 50))
            )
        )
        assert out == [(r[3],) for r in RECORDS if r[1] <= 50]

    def test_cost_matches_measured_pages(self):
        store, table = make(self.LAYOUT)
        estimated = table.scan_cost(fieldlist=["t"])
        _, io = store.run_cold(lambda: list(table.scan(fieldlist=["t"])))
        assert estimated.pages == io.page_reads


class TestGridLayout:
    LAYOUT = "zorder(grid[lat, lon],[100, 100](project[lat, lon](T)))"

    def test_spatial_query_correct(self):
        _, table = make(self.LAYOUT)
        q = Rect({"lat": (100, 199), "lon": (200, 299)})
        got = sorted(table.scan(predicate=q))
        want = sorted(
            (r[1], r[2])
            for r in RECORDS
            if 100 <= r[1] <= 199 and 200 <= r[2] <= 299
        )
        assert got == want

    def test_spatial_query_reads_fewer_pages_than_full(self):
        store, table = make(self.LAYOUT)
        q = Rect({"lat": (100, 199), "lon": (200, 299)})
        _, io_query = store.run_cold(lambda: list(table.scan(predicate=q)))
        _, io_full = store.run_cold(lambda: list(table.scan()))
        assert io_query.page_reads < io_full.page_reads

    def test_scan_cost_matches_measured(self):
        store, table = make(self.LAYOUT)
        q = Rect({"lat": (100, 199), "lon": (200, 299)})
        estimated = table.scan_cost(predicate=q)
        _, io = store.run_cold(lambda: list(table.scan(predicate=q)))
        assert estimated.pages == io.page_reads

    def test_get_element_by_cell_coord(self):
        _, table = make(self.LAYOUT)
        entry = table.layout.cell_directory[0]
        records = table.get_element(entry.coord)
        assert len(records) == entry.row_count

    def test_get_element_unknown_cell(self):
        _, table = make(self.LAYOUT)
        with pytest.raises(QueryError):
            table.get_element((999, 999))


class TestFoldedLayout:
    LAYOUT = "fold[lat, lon; id](T)"

    def test_scan_unnests(self):
        _, table = make(self.LAYOUT)
        got = sorted(table.scan())
        want = sorted((r[3], r[1], r[2]) for r in RECORDS)
        assert got == want

    def test_scan_schema(self):
        _, table = make(self.LAYOUT)
        assert table.scan_schema().names() == ["id", "lat", "lon"]

    def test_predicate_on_unnested(self):
        _, table = make(self.LAYOUT)
        got = list(table.scan(predicate=Range("id", 2, 2)))
        assert all(r[0] == 2 for r in got)
        assert len(got) == len([r for r in RECORDS if r[3] == 2])


class TestMirrorLayout:
    LAYOUT = "mirror(rows(T), columns(T))"

    def test_narrow_query_uses_columns(self):
        store, table = make(self.LAYOUT)
        _, io_narrow = store.run_cold(
            lambda: list(table.scan(fieldlist=["id"]))
        )
        rows_pages = table.layout.mirrors[0].total_pages()
        assert io_narrow.page_reads < rows_pages

    def test_wide_query_uses_rows(self):
        store, table = make(self.LAYOUT)
        out, io = store.run_cold(lambda: list(table.scan()))
        assert out == RECORDS
        rows_pages = table.layout.mirrors[0].total_pages()
        assert io.page_reads <= rows_pages + 1


class TestGetElementAndNext:
    def test_get_element_rows_fast_path(self):
        store, table = make()
        store.pool.clear()
        store.disk.stats.reset()
        assert table.get_element(250) == RECORDS[250]
        assert store.disk.stats.page_reads == 1  # direct page access

    def test_get_element_out_of_range(self):
        _, table = make()
        with pytest.raises(QueryError):
            table.get_element(len(RECORDS))
        with pytest.raises(QueryError):
            table.get_element(-1)

    def test_get_element_with_fieldlist(self):
        _, table = make()
        assert table.get_element(3, fieldlist=["lon"]) == (RECORDS[3][2],)

    def test_next_after_get_element(self):
        _, table = make()
        table.get_element(10)
        assert table.next() == RECORDS[11]
        assert table.next() == RECORDS[12]

    def test_next_with_order(self):
        _, table = make()
        by_lat = sorted(RECORDS, key=lambda r: r[1])
        table.get_element(0)
        first = table.next(order=["lat"])
        assert first == by_lat[1]

    def test_next_past_end(self):
        store = RodentStore(page_size=1024)
        store.create_table("T", SCHEMA)
        table = store.load("T", RECORDS[:2])
        table.get_element(1)
        with pytest.raises(QueryError):
            table.next()

    def test_get_element_cost(self):
        _, table = make()
        cost = table.get_element_cost(0)
        assert cost.pages == 1

    def test_multidim_index_on_rows_rejected(self):
        _, table = make()
        with pytest.raises(QueryError):
            table.get_element((1, 2))


class TestOrderList:
    def test_prefixes_of_sort_keys(self):
        _, table = make("orderby[t ASC, id DESC](T)")
        orders = table.order_list()
        assert orders == [
            (("t", True),),
            (("t", True), ("id", False)),
        ]

    def test_unordered_layout_empty(self):
        _, table = make()
        assert table.order_list() == []


class TestInsertOverflowCompact:
    def test_insert_visible_in_scan(self):
        _, table = make(records=RECORDS[:100])
        table.insert(RECORDS[100:110])
        assert sorted(table.scan()) == sorted(RECORDS[:110])

    def test_flush_creates_overflow_region(self):
        _, table = make(records=RECORDS[:100])
        table.insert(RECORDS[100:150])
        overflow = table.flush_inserts()
        assert overflow is not None
        assert table.overflow_row_count == 50
        assert sorted(table.scan()) == sorted(RECORDS[:150])

    def test_flush_empty_is_noop(self):
        _, table = make()
        assert table.flush_inserts() is None

    def test_insert_respects_projection_pipeline(self):
        _, table = make("project[lat, lon](T)")
        table.insert(RECORDS[:5])
        got = list(table.scan())
        assert got[-5:] == [(r[1], r[2]) for r in RECORDS[:5]]

    def test_insert_respects_select_pipeline(self):
        _, table = make("select[r.id = 0](T)")
        kept = table.insert(RECORDS[:14])
        assert kept == len([r for r in RECORDS[:14] if r[3] == 0])

    def test_compact_merges_overflow(self):
        store, table = make("orderby[t](T)", records=RECORDS[:100])
        table.insert(RECORDS[100:160])
        table.flush_inserts()
        table.compact()
        assert table.overflow_row_count == 0
        assert list(table.scan()) == sorted(
            RECORDS[:160], key=lambda r: r[0]
        )

    def test_compact_grid_layout(self):
        store, table = make(
            "grid[lat, lon],[100, 100](project[lat, lon](T))",
            records=RECORDS[:200],
        )
        table.insert(RECORDS[200:300])
        table.compact()
        q = Rect({"lat": (0, 99), "lon": (0, 99)})
        got = sorted(table.scan(predicate=q))
        want = sorted(
            (r[1], r[2])
            for r in RECORDS[:300]
            if r[1] <= 99 and r[2] <= 99
        )
        assert got == want

    def test_scan_cost_includes_overflow(self):
        _, table = make(records=RECORDS[:100])
        base = table.scan_cost().pages
        table.insert(RECORDS[100:300])
        table.flush_inserts()
        assert table.scan_cost().pages > base

    def test_order_not_trusted_with_overflow(self):
        _, table = make("orderby[t](T)", records=RECORDS[:100])
        table.insert([RECORDS[100]])
        out = list(table.scan(order=["t"]))
        assert [r[0] for r in out] == sorted(r[0] for r in out)

    def test_insert_validates_schema(self):
        _, table = make()
        with pytest.raises(Exception):
            table.insert([("not", "valid")])


class TestHelpers:
    def test_normalize_order(self):
        assert normalize_order(None) == ()
        assert normalize_order(["a", ("b", False)]) == (
            ("a", True), ("b", False)
        )

    def test_record_pipeline_extracts_record_ops(self):
        expr = parse(
            "zorder(grid[lat, lon],[10, 10](project[lat, lon]("
            "select[r.id = 1](T))))"
        )
        ops = [type(n).__name__ for n in record_pipeline(expr)]
        assert ops == ["Select", "Project"]

    def test_record_pipeline_rejects_prejoin(self):
        with pytest.raises(StorageError):
            record_pipeline(parse("prejoin[k](A, B)"))

    def test_structural_residual(self):
        expr = parse(
            "zorder(grid[lat, lon],[10, 10](project[lat, lon](T)))"
        )
        residual = structural_residual(expr, "__stored__")
        assert residual.to_text() == (
            "zorder(grid[lat, lon],[10.0, 10.0](__stored__))"
        )

    def test_unloaded_table_raises(self):
        store = RodentStore(page_size=1024)
        table = store.create_table("T", SCHEMA)
        with pytest.raises(StorageError):
            list(table.scan())
