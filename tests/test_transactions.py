"""Tests for repro.storage.transactions and repro.storage.locks."""

import threading

import pytest

from repro.errors import DeadlockError, TransactionError
from repro.storage.buffer import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.locks import LockManager, LockMode
from repro.storage.transactions import TransactionManager, TxnStatus
from repro.storage.wal import WriteAheadLog, recover


def make_manager():
    disk = DiskManager(page_size=256)
    pool = BufferPool(disk, capacity=16)
    wal = WriteAheadLog()
    return TransactionManager(wal, pool), disk, pool, wal


class TestLockManager:
    def test_shared_locks_compatible(self):
        lm = LockManager(timeout=0.2)
        lm.acquire(1, "T", LockMode.SHARED)
        lm.acquire(2, "T", LockMode.SHARED)
        assert set(lm.holders("T")) == {1, 2}

    def test_exclusive_blocks(self):
        lm = LockManager(timeout=0.1)
        lm.acquire(1, "T", LockMode.EXCLUSIVE)
        with pytest.raises(TransactionError):
            lm.acquire(2, "T", LockMode.SHARED)

    def test_reacquire_is_noop(self):
        lm = LockManager(timeout=0.2)
        lm.acquire(1, "T", LockMode.SHARED)
        lm.acquire(1, "T", LockMode.SHARED)
        assert lm.holders("T") == {1: LockMode.SHARED}

    def test_exclusive_holder_can_read(self):
        lm = LockManager(timeout=0.2)
        lm.acquire(1, "T", LockMode.EXCLUSIVE)
        lm.acquire(1, "T", LockMode.SHARED)  # already stronger
        assert lm.holders("T") == {1: LockMode.EXCLUSIVE}

    def test_upgrade_when_sole_holder(self):
        lm = LockManager(timeout=0.2)
        lm.acquire(1, "T", LockMode.SHARED)
        lm.acquire(1, "T", LockMode.EXCLUSIVE)
        assert lm.holders("T") == {1: LockMode.EXCLUSIVE}

    def test_release_all_wakes_waiters(self):
        lm = LockManager(timeout=2.0)
        lm.acquire(1, "T", LockMode.EXCLUSIVE)
        acquired = threading.Event()

        def waiter():
            lm.acquire(2, "T", LockMode.SHARED)
            acquired.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        lm.release_all(1)
        assert acquired.wait(2.0)
        thread.join(2.0)

    def test_deadlock_detected(self):
        lm = LockManager(timeout=5.0)
        lm.acquire(1, "A", LockMode.EXCLUSIVE)
        lm.acquire(2, "B", LockMode.EXCLUSIVE)
        failure: list = []
        done = threading.Event()

        def t1_wants_b():
            try:
                lm.acquire(1, "B", LockMode.EXCLUSIVE)
            except Exception as exc:  # pragma: no cover - either side may win
                failure.append(exc)
            finally:
                done.set()

        thread = threading.Thread(target=t1_wants_b, daemon=True)
        thread.start()
        import time

        time.sleep(0.1)  # let t1 start waiting on B
        with pytest.raises(DeadlockError):
            lm.acquire(2, "A", LockMode.EXCLUSIVE)
        lm.release_all(2)
        done.wait(2.0)
        thread.join(2.0)

    def test_locks_of(self):
        lm = LockManager()
        lm.acquire(1, "A", LockMode.SHARED)
        lm.acquire(1, "B", LockMode.EXCLUSIVE)
        assert lm.locks_of(1) == {"A", "B"}
        lm.release_all(1)
        assert lm.locks_of(1) == set()


class TestTransactions:
    def test_commit_applies_update(self):
        mgr, disk, pool, wal = make_manager()
        page_id = disk.allocate_page()
        txn = mgr.begin()
        txn.update_page(page_id, 0, b"hello")
        txn.commit()
        pool.flush_all()
        assert bytes(disk.read_page(page_id)[:5]) == b"hello"
        assert txn.status is TxnStatus.COMMITTED

    def test_abort_restores_before_image(self):
        mgr, disk, pool, wal = make_manager()
        page_id = disk.allocate_page()
        with mgr.begin() as setup:
            setup.update_page(page_id, 0, b"first")
        txn = mgr.begin()
        txn.update_page(page_id, 0, b"xxxxx")
        txn.abort()
        pool.flush_all()
        assert bytes(disk.read_page(page_id)[:5]) == b"first"

    def test_abort_reverses_multiple_updates(self):
        mgr, disk, pool, wal = make_manager()
        page_id = disk.allocate_page()
        txn = mgr.begin()
        txn.update_page(page_id, 0, b"aaaa")
        txn.update_page(page_id, 2, b"bb")
        txn.abort()
        pool.flush_all()
        assert bytes(disk.read_page(page_id)[:4]) == b"\x00" * 4

    def test_finished_transaction_rejects_use(self):
        mgr, disk, pool, wal = make_manager()
        txn = mgr.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()
        with pytest.raises(TransactionError):
            txn.update_page(0, 0, b"x")

    def test_context_manager_commits(self):
        mgr, disk, pool, wal = make_manager()
        page_id = disk.allocate_page()
        with mgr.begin() as txn:
            txn.update_page(page_id, 0, b"done")
        assert txn.status is TxnStatus.COMMITTED

    def test_context_manager_aborts_on_error(self):
        mgr, disk, pool, wal = make_manager()
        page_id = disk.allocate_page()
        with pytest.raises(ValueError):
            with mgr.begin() as txn:
                txn.update_page(page_id, 0, b"oops!")
                raise ValueError("boom")
        assert txn.status is TxnStatus.ABORTED
        pool.flush_all()
        assert bytes(disk.read_page(page_id)[:5]) == b"\x00" * 5

    def test_locks_released_at_commit(self):
        mgr, disk, pool, wal = make_manager()
        txn = mgr.begin()
        txn.lock_exclusive("T")
        assert mgr.locks.holders("T")
        txn.commit()
        assert not mgr.locks.holders("T")

    def test_active_count(self):
        mgr, *_ = make_manager()
        t1 = mgr.begin()
        t2 = mgr.begin()
        assert mgr.active_count == 2
        t1.commit()
        t2.abort()
        assert mgr.active_count == 0

    def test_run_helper(self):
        mgr, disk, pool, wal = make_manager()
        page_id = disk.allocate_page()
        mgr.run(lambda txn: txn.update_page(page_id, 0, b"ran"))
        pool.flush_all()
        assert bytes(disk.read_page(page_id)[:3]) == b"ran"


class TestCrashRecovery:
    def test_committed_work_survives_crash(self):
        """Simulate a crash: dirty pages lost, WAL replayed onto old disk."""
        mgr, disk, pool, wal = make_manager()
        page_id = disk.allocate_page()
        with mgr.begin() as txn:
            txn.update_page(page_id, 0, b"keep")
        # Crash before pool.flush_all(): on-disk page is still zeroes.
        assert bytes(disk.read_page(page_id)[:4]) == b"\x00" * 4
        summary = recover(wal, disk)
        assert summary["redo"] >= 1
        assert bytes(disk.read_page(page_id)[:4]) == b"keep"

    def test_uncommitted_work_rolled_back_after_crash(self):
        mgr, disk, pool, wal = make_manager()
        page_id = disk.allocate_page()
        txn = mgr.begin()
        txn.update_page(page_id, 0, b"drop")
        pool.flush_all()  # dirty page hit disk before the crash
        assert bytes(disk.read_page(page_id)[:4]) == b"drop"
        recover(wal, disk)
        assert bytes(disk.read_page(page_id)[:4]) == b"\x00" * 4
