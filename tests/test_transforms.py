"""Tests for repro.algebra.transforms.

Each transform is checked against the definitional comprehension the paper
gives for it (§3.5), plus inverse/idempotence properties via hypothesis.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algebra import ast
from repro.algebra.comprehension import OrderByClause, comprehend
from repro.algebra.parser import parse, parse_condition
from repro.algebra.transforms import (
    Evaluator,
    chunk_nesting,
    columns_records,
    delta_list,
    delta_records,
    eval_scalar,
    evaluate,
    fold_records,
    fold_records_nested_loops,
    grid_records,
    hilbert_grid,
    prejoin_records,
    prejoined_fields,
    project_records,
    select_records,
    transpose_matrix,
    undelta_list,
    undelta_records,
    unfold_records,
    zorder_grid,
)
from repro.errors import AlgebraError

T = [
    (2139, 617, "32 Vassar St"),
    (2142, 617, "1 Broadway"),
    (10001, 212, "350 5th Ave"),
    (2139, 617, "77 Mass Ave"),
]
POS = {"zip": 0, "area": 1, "addr": 2}

records_strategy = st.lists(
    st.tuples(
        st.integers(0, 50), st.integers(0, 5), st.integers(-100, 100)
    ),
    max_size=40,
)


class TestEvalScalar:
    def test_field_and_const(self):
        assert eval_scalar(ast.FieldRef("area"), T[0], POS) == 617
        assert eval_scalar(ast.Const(5), T[0], POS) == 5

    def test_unknown_field(self):
        with pytest.raises(AlgebraError):
            eval_scalar(ast.FieldRef("nope"), T[0], POS)

    def test_comparisons(self):
        cond = parse_condition("r.area = 617")
        assert eval_scalar(cond, T[0], POS) is True
        assert eval_scalar(cond, T[2], POS) is False

    def test_arith(self):
        expr = parse_condition("r.zip + 1")
        assert eval_scalar(expr, T[0], POS) == 2140
        assert eval_scalar(parse_condition("r.zip / 2"), T[0], POS) == 1069.5
        assert eval_scalar(parse_condition("r.zip % 10"), T[0], POS) == 9

    def test_logical_shortcuts(self):
        cond = parse_condition("r.area = 617 and r.zip = 2139")
        assert eval_scalar(cond, T[0], POS) is True
        cond = parse_condition("r.area = 212 or r.zip = 2139")
        assert eval_scalar(cond, T[0], POS) is True
        cond = parse_condition("not r.area = 617")
        assert eval_scalar(cond, T[0], POS) is False


class TestProjectSelect:
    def test_project_matches_comprehension(self):
        """project[A](N) ≡ [[r.Ai...] | \\r <- N]."""
        direct = project_records(T, POS, ["zip", "addr"])
        by_comp = comprehend(
            head=lambda e: (e["r"][0], e["r"][2]), generators=[("r", T)]
        )
        assert direct == by_comp

    def test_project_unknown_field(self):
        with pytest.raises(AlgebraError):
            project_records(T, POS, ["nope"])

    def test_select_matches_comprehension(self):
        cond = parse_condition("r.area = 617")
        direct = select_records(T, POS, cond)
        by_comp = comprehend(
            head=lambda e: e["r"],
            generators=[("r", T)],
            conditions=[lambda e: e["r"][1] == 617],
        )
        assert direct == by_comp


class TestFold:
    def test_fold_matches_paper_definition(self):
        """fold_{B,A}(N) ≡ [r.A, [r'.B | r.A = r'.A] | \\r <- N] (dedup A)."""
        direct = fold_records(T, POS, ["zip", "addr"], ["area"])
        assert direct == [
            (617, [(2139, "32 Vassar St"), (2142, "1 Broadway"),
                   (2139, "77 Mass Ave")]),
            (212, [(10001, "350 5th Ave")]),
        ]

    def test_fold_single_nest_field_gives_scalars(self):
        direct = fold_records(T, POS, ["zip"], ["area"])
        assert direct == [(617, [2139, 2142, 2139]), (212, [10001])]

    def test_nested_loops_equals_hash(self):
        """Algorithm 1 (nested loops) == the hash strategy (§4.2)."""
        a = fold_records(T, POS, ["zip", "addr"], ["area"])
        b = fold_records_nested_loops(T, POS, ["zip", "addr"], ["area"])
        assert a == b

    @given(records_strategy)
    def test_nested_loops_equals_hash_property(self, records):
        positions = {"a": 0, "b": 1, "c": 2}
        fast = fold_records(records, positions, ["c"], ["b"])
        slow = fold_records_nested_loops(records, positions, ["c"], ["b"])
        assert fast == slow

    @given(records_strategy)
    def test_unfold_inverts_fold_up_to_grouping(self, records):
        positions = {"a": 0, "b": 1, "c": 2}
        folded = fold_records(records, positions, ["a", "c"], ["b"])
        unfolded = unfold_records(folded, 1, 2)
        # unfold(fold(N)) reorders records by group but preserves multiset
        # of the projected fields (b, a, c).
        expected = sorted((r[1], r[0], r[2]) for r in records)
        assert sorted(unfolded) == expected


class TestDelta:
    def test_paper_delta_definition(self):
        """∆([3,5,6]) = [3, 2, 1]: differences between subsequent elements."""
        assert delta_list([3, 5, 6]) == [3, 2, 1]

    def test_delta_empty_and_single(self):
        assert delta_list([]) == []
        assert delta_list([7]) == [7]

    @given(st.lists(st.integers(-(10**9), 10**9), max_size=100))
    def test_undelta_inverts_delta(self, values):
        assert undelta_list(delta_list(values)) == values

    @given(records_strategy)
    def test_undelta_records_inverts(self, records):
        positions = {"a": 0, "b": 1, "c": 2}
        encoded = delta_records(records, positions, ["a", "c"])
        assert undelta_records(encoded, positions, ["a", "c"]) == [
            tuple(r) for r in records
        ]

    def test_delta_records_first_absolute(self):
        records = [(10, 1), (13, 1), (11, 1)]
        out = delta_records(records, {"x": 0, "y": 1}, ["x"])
        assert out == [(10, 1), (3, 1), (-2, 1)]


class TestPrejoin:
    def test_matches_comprehension(self):
        """prejoin ≡ [[r1, r2] | \\r1 <- N1, \\r2 <- N2, join match]."""
        left = [(1, "a"), (2, "b")]
        right = [(1, 10.0), (1, 20.0), (3, 30.0)]
        direct = prejoin_records(
            left, {"k": 0, "s": 1}, right, {"k": 0, "v": 1}, "k"
        )
        by_comp = comprehend(
            head=lambda e: tuple(e["r1"]) + tuple(e["r2"]),
            generators=[("r1", left), ("r2", right)],
            conditions=[lambda e: e["r1"][0] == e["r2"][0]],
        )
        assert sorted(direct) == sorted(by_comp)

    def test_missing_join_attr(self):
        with pytest.raises(AlgebraError):
            prejoin_records([(1,)], {"a": 0}, [(1,)], {"b": 0}, "a")

    def test_prejoined_fields_rename_duplicates(self):
        fields = prejoined_fields(["k", "x"], ["k", "x", "y"])
        assert fields == ("k", "x", "k_2", "x_2", "y")


class TestTranspose:
    def test_paper_example(self):
        """transpose([[1,2,3],[4,5,6]]) = [[1,4],[2,5],[3,6]]."""
        assert transpose_matrix([[1, 2, 3], [4, 5, 6]]) == [
            [1, 4], [2, 5], [3, 6]
        ]

    def test_ragged_rejected(self):
        with pytest.raises(AlgebraError):
            transpose_matrix([[1], [2, 3]])

    def test_empty(self):
        assert transpose_matrix([]) == []

    @given(
        st.integers(1, 6).flatmap(
            lambda width: st.lists(
                st.lists(st.integers(), min_size=width, max_size=width),
                min_size=1,
                max_size=6,
            )
        )
    )
    def test_involution(self, matrix):
        assert transpose_matrix(transpose_matrix(matrix)) == [
            list(row) for row in matrix
        ]


class TestGrid:
    RECS = [(0, 0), (5, 5), (12, 3), (25, 25), (13, 14)]
    POS2 = {"x": 0, "y": 1}

    def test_cells_partition_records(self):
        grid = grid_records(self.RECS, self.POS2, ["x", "y"], [10, 10])
        flat = [r for cell in grid.cells for r in cell]
        assert sorted(flat) == sorted(self.RECS)

    def test_row_major_cell_order(self):
        grid = grid_records(self.RECS, self.POS2, ["x", "y"], [10, 10])
        assert grid.coords == sorted(grid.coords)

    def test_cell_bounds(self):
        grid = grid_records(self.RECS, self.POS2, ["x", "y"], [10, 10])
        bounds = grid.cell_bounds((1, 0))
        assert bounds == [(10.0, 20.0), (0.0, 10.0)]

    def test_records_fall_in_own_bounds(self):
        grid = grid_records(self.RECS, self.POS2, ["x", "y"], [10, 10])
        for coord, cell in zip(grid.coords, grid.cells):
            bounds = grid.cell_bounds(coord)
            for record in cell:
                for (lo, hi), value in zip(bounds, record):
                    assert lo <= value < hi

    def test_matches_partitionby_comprehension(self):
        """grid ≡ [r | \\r <- N, partitionby r.A1 s1, r.A2 s2] (§3.6)."""
        from repro.algebra.comprehension import PartitionByClause

        grid = grid_records(self.RECS, self.POS2, ["x"], [10])
        by_comp = comprehend(
            head=lambda e: e["r"],
            generators=[("r", self.RECS)],
            clauses=[PartitionByClause(lambda e: e["r"][0], stride=10)],
        )
        assert sorted(map(tuple, (map(tuple, c) for c in grid.cells))) == sorted(
            map(tuple, (map(tuple, c) for c in by_comp))
        )

    def test_unknown_dim(self):
        with pytest.raises(AlgebraError):
            grid_records(self.RECS, self.POS2, ["z"], [10])

    def test_explicit_origin(self):
        grid = grid_records(self.RECS, self.POS2, ["x", "y"], [10, 10],
                            origin=(0, 0))
        assert grid.origin == (0.0, 0.0)

    def test_zorder_reorders_cells_by_morton(self):
        from repro.curves.zorder import zorder_sort_key

        grid = grid_records(self.RECS, self.POS2, ["x", "y"], [5, 5])
        z = zorder_grid(grid)
        keys = [zorder_sort_key(c) for c in z.coords]
        assert keys == sorted(keys)
        assert sorted(map(tuple, z.coords)) == sorted(map(tuple, grid.coords))

    def test_hilbert_preserves_cells(self):
        grid = grid_records(self.RECS, self.POS2, ["x", "y"], [5, 5])
        h = hilbert_grid(grid)
        assert sorted(map(tuple, h.coords)) == sorted(map(tuple, grid.coords))

    def test_hilbert_requires_2d(self):
        grid = grid_records(self.RECS, self.POS2, ["x"], [5])
        with pytest.raises(AlgebraError):
            hilbert_grid(grid)

    @given(
        st.lists(st.tuples(st.integers(-50, 50), st.integers(-50, 50)),
                 min_size=1, max_size=60)
    )
    def test_grid_partition_property(self, records):
        grid = grid_records(records, self.POS2, ["x", "y"], [7, 13])
        flat = [r for cell in grid.cells for r in cell]
        assert sorted(flat) == sorted(records)
        # Every record's coordinate matches its cell's coordinate.
        for coord, cell in zip(grid.coords, grid.cells):
            for record in cell:
                assert grid.coord_of(record, self.POS2) == coord


class TestChunk:
    def test_1d(self):
        assert chunk_nesting([1, 2, 3, 4, 5], [2]) == [[1, 2], [3, 4], [5]]

    def test_2d(self):
        matrix = [[1, 2, 3, 4], [5, 6, 7, 8], [9, 10, 11, 12]]
        chunks = chunk_nesting(matrix, [2, 2])
        assert chunks == [
            [[1, 2], [5, 6]],
            [[3, 4], [7, 8]],
            [[9, 10]],
            [[11, 12]],
        ]

    def test_chunk_preserves_leaves(self):
        from repro.types.values import flatten

        matrix = [[i * 4 + j for j in range(4)] for i in range(4)]
        chunks = chunk_nesting(matrix, [2, 2])
        assert sorted(flatten(chunks)) == sorted(flatten(matrix))


class TestColumns:
    def test_single_field_groups_flat(self):
        """N_c gives flat value lists per column (paper §3.3)."""
        cols = columns_records(T, POS, [("zip",), ("area",)])
        assert cols == [
            [2139, 2142, 10001, 2139],
            [617, 617, 212, 617],
        ]

    def test_multi_field_group_tuples(self):
        cols = columns_records(T, POS, [("zip", "area")])
        assert cols == [[(r[0], r[1]) for r in T]]


class TestEvaluator:
    TABLES = {"T": (T, ("zip", "area", "addr"))}

    def test_tableref(self):
        out = evaluate(parse("T"), self.TABLES)
        assert out.value == T
        assert out.fields == ("zip", "area", "addr")

    def test_unknown_table(self):
        with pytest.raises(AlgebraError):
            evaluate(parse("Nope"), self.TABLES)

    def test_project_pipeline(self):
        out = evaluate(parse("project[zip](select[r.area = 617](T))"),
                       self.TABLES)
        assert out.value == [(2139,), (2142,), (2139,)]

    def test_append(self):
        out = evaluate(parse("append[zip2=r.zip * 2](T)"), self.TABLES)
        assert out.fields[-1] == "zip2"
        assert out.value[0][-1] == 4278

    def test_orderby_then_groupby(self):
        out = evaluate(parse("groupby[area](orderby[zip](T))"), self.TABLES)
        assert out.kind == "grouped"
        # zip order: 2139, 2139, 2142, 10001 -> area groups 617 then 212.
        assert [len(g) for g in out.value] == [3, 1]

    def test_limit_on_grouped(self):
        out = evaluate(parse("limit[1](groupby[area](T))"), self.TABLES)
        assert len(out.value) == 1

    def test_fold_unfold_roundtrip(self):
        out = evaluate(parse("unfold(fold[zip, addr; area](T))"), self.TABLES)
        assert sorted(out.value) == sorted(
            (r[1], r[0], r[2]) for r in T
        )

    def test_delta_without_fields_requires_nesting(self):
        with pytest.raises(AlgebraError):
            evaluate(parse("delta(T)"), self.TABLES)

    def test_delta_on_literal(self):
        out = evaluate(parse("delta([3, 5, 6])"), {})
        assert out.value == [3, 2, 1]

    def test_zorder_requires_grid_or_matrix(self):
        with pytest.raises(AlgebraError):
            evaluate(parse("zorder(T)"), self.TABLES)

    def test_zorder_on_literal_matrix(self):
        out = evaluate(parse("zorder([[1, 2], [3, 4]])"), {})
        assert out.value == [1, 2, 3, 4]  # z-order of a 2x2 block

    def test_grid_pipeline_with_delta_and_compress(self):
        expr = parse(
            "compress[varint; zip](delta[zip](zorder("
            "grid[zip, area],[100, 100](project[zip, area](T)))))"
        )
        out = evaluate(expr, self.TABLES)
        assert out.kind == "grid"
        assert out.meta["cell_order"] == "zorder"
        assert out.meta["delta_fields"] == ("zip",)
        assert out.meta["codecs"][("zip",)] == "varint"

    def test_transpose_of_records(self):
        out = evaluate(parse("transpose(project[zip, area](T))"), self.TABLES)
        assert out.value == [
            [2139, 2142, 10001, 2139],
            [617, 617, 212, 617],
        ]

    def test_columns_defaults_to_dsm(self):
        out = evaluate(parse("columns(T)"), self.TABLES)
        assert len(out.value) == 3
        assert out.meta["column_groups"] == (("zip",), ("area",), ("addr",))

    def test_mirror_evaluates_both(self):
        out = evaluate(parse("mirror(rows(T), columns(T))"), self.TABLES)
        assert out.kind == "mirror"
        assert out.meta["left"].kind == "records"
        assert out.meta["right"].kind == "columns"

    def test_rows_flattens_grouped(self):
        out = evaluate(parse("rows(groupby[area](T))"), self.TABLES)
        assert out.kind == "records"
        assert sorted(out.value) == sorted(T)

    def test_partition_by_expression(self):
        out = evaluate(parse("partition[r.zip % 2](T)"), self.TABLES)
        assert out.kind == "grouped"
        assert len(out.value) == 2

    def test_unfold_requires_folded(self):
        with pytest.raises(AlgebraError):
            evaluate(parse("unfold(T)"), self.TABLES)

    def test_intro_example_sales(self):
        """zorder(grid[y, z](N)) from the paper's introduction."""
        sales = [(2001, 2139), (2001, 2142), (2002, 2139), (2003, 10001)]
        out = evaluate(
            parse("zorder(grid[y, z],[1, 1](N))"),
            {"N": (sales, ("y", "z"))},
        )
        assert out.kind == "grid"
        flat = [r for cell in out.value for r in cell]
        assert sorted(flat) == sorted(sales)
