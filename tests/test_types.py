"""Tests for repro.types.types and repro.types.schema."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SchemaError, TypeCheckError
from repro.types import (
    BOOL,
    DOUBLE,
    FLOAT,
    INT,
    STRING,
    TIMESTAMP,
    Field,
    ListType,
    NamedType,
    NestedType,
    Schema,
    named,
    nesting,
    type_from_name,
)


class TestScalarTypes:
    def test_int_validates_ints(self):
        assert INT.validate(42)
        assert INT.validate(-(2**63))
        assert INT.validate(2**63 - 1)

    def test_int_rejects_bool_and_overflow(self):
        assert not INT.validate(True)
        assert not INT.validate(2**63)
        assert not INT.validate(3.5)

    def test_int_coerce_integral_float(self):
        assert INT.coerce(3.0) == 3
        with pytest.raises(TypeCheckError):
            INT.coerce(3.5)

    def test_float_accepts_ints_and_floats(self):
        assert FLOAT.validate(1)
        assert FLOAT.validate(1.5)
        assert not FLOAT.validate(True)
        assert FLOAT.coerce(2) == 2.0
        assert isinstance(FLOAT.coerce(2), float)

    def test_double_is_distinct_name_same_width(self):
        assert DOUBLE.name == "double"
        assert DOUBLE.fixed_size == FLOAT.fixed_size == 8

    def test_bool(self):
        assert BOOL.validate(True)
        assert not BOOL.validate(1)
        assert BOOL.fixed_size == 1

    def test_timestamp_is_int_like(self):
        assert TIMESTAMP.validate(1_700_000_000)
        assert TIMESTAMP.fixed_size == 8

    def test_string_sizes(self):
        assert STRING.validate("hello")
        assert not STRING.validate(b"raw")
        assert STRING.estimated_size("hello") == 4 + 5
        assert STRING.estimated_size() == 4 + STRING.DEFAULT_ESTIMATE

    def test_string_utf8_size(self):
        assert STRING.estimated_size("é") == 4 + 2

    def test_type_from_name(self):
        assert type_from_name("int") is INT
        assert type_from_name("string") is STRING
        with pytest.raises(SchemaError):
            type_from_name("decimal")

    def test_scalar_equality_and_hash(self):
        assert INT == type_from_name("int")
        assert hash(INT) == hash(type_from_name("int"))
        assert INT != FLOAT


class TestNamedType:
    def test_name_rendering(self):
        t = named("zip", INT)
        assert t.name == "zip:int"
        assert t.fixed_size == 8

    def test_delegates_validation(self):
        t = named("zip", INT)
        assert t.validate(2139)
        assert not t.validate("x")

    def test_empty_label_rejected(self):
        with pytest.raises(SchemaError):
            NamedType("", INT)

    def test_equality(self):
        assert named("a", INT) == named("a", INT)
        assert named("a", INT) != named("b", INT)
        assert named("a", INT) != named("a", FLOAT)


class TestNestedType:
    def test_paper_grammar_rendering(self):
        t = nesting([named("Zip", INT), named("Addr", STRING)])
        assert t.name == "[Zip:int, Addr:string]"

    def test_fixed_size_none_with_var_member(self):
        assert nesting([INT, STRING]).fixed_size is None
        assert nesting([INT, FLOAT]).fixed_size == 16

    def test_validate_arity_and_members(self):
        t = nesting([INT, STRING])
        assert t.validate((1, "a"))
        assert not t.validate((1,))
        assert not t.validate(("a", 1))
        assert not t.validate(5)

    def test_coerce(self):
        t = nesting([INT, FLOAT])
        assert t.coerce([1, 2]) == (1, 2.0)
        with pytest.raises(TypeCheckError):
            t.coerce([1])

    def test_estimated_size_uses_values(self):
        t = nesting([INT, STRING])
        assert t.estimated_size((1, "abc")) == 8 + 4 + 3


class TestListType:
    def test_validate(self):
        t = ListType(INT)
        assert t.validate([1, 2, 3])
        assert t.validate([])
        assert not t.validate([1, "a"])

    def test_name(self):
        assert ListType(INT).name == "list<int>"

    def test_equality(self):
        assert ListType(INT) == ListType(INT)
        assert ListType(INT) != ListType(FLOAT)


class TestField:
    def test_valid_names(self):
        Field("lat", FLOAT)
        Field("lat_lon2", INT)

    def test_invalid_names(self):
        with pytest.raises(SchemaError):
            Field("", INT)
        with pytest.raises(SchemaError):
            Field("a b", INT)

    def test_as_named_type(self):
        f = Field("t", INT)
        assert f.as_named_type() == named("t", INT)


class TestSchema:
    def test_of_parses_specs(self):
        s = Schema.of("t:int", "lat:float", "name:string")
        assert s.names() == ["t", "lat", "name"]
        assert s.types() == [INT, FLOAT, STRING]

    def test_of_rejects_bad_spec(self):
        with pytest.raises(SchemaError):
            Schema.of("t")
        with pytest.raises(SchemaError):
            Schema.of("t:nope")

    def test_duplicate_fields_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("a:int", "a:float")

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_index_and_lookup(self):
        s = Schema.of("a:int", "b:float")
        assert s.index_of("b") == 1
        assert s.field("a").dtype is INT
        assert s.has_field("a") and not s.has_field("z")
        with pytest.raises(SchemaError):
            s.index_of("z")

    def test_project_order_preserved(self):
        s = Schema.of("a:int", "b:float", "c:string")
        p = s.project(["c", "a"])
        assert p.names() == ["c", "a"]

    def test_append_fields(self):
        s = Schema.of("a:int")
        s2 = s.append_fields([Field("b", FLOAT)])
        assert s2.names() == ["a", "b"]
        assert s.names() == ["a"]  # original untouched

    def test_record_type(self):
        s = Schema.of("a:int", "b:string")
        assert s.record_type().name == "[a:int, b:string]"

    def test_fixed_width(self):
        assert Schema.of("a:int", "b:float").fixed_width() == 16
        assert Schema.of("a:int", "b:string").fixed_width() is None

    def test_validate_and_coerce_record(self):
        s = Schema.of("a:int", "b:float")
        assert s.validate_record((1, 2.0))
        assert not s.validate_record((1,))
        assert s.coerce_record([1, 2]) == (1, 2.0)
        with pytest.raises(SchemaError):
            s.coerce_record([1])

    def test_record_dict_roundtrip(self):
        s = Schema.of("a:int", "b:float")
        rec = s.record_from_dict({"a": 1, "b": 2.5})
        assert rec == (1, 2.5)
        assert s.record_to_dict(rec) == {"a": 1, "b": 2.5}
        with pytest.raises(SchemaError):
            s.record_from_dict({"a": 1})

    def test_equality_and_iteration(self):
        s1 = Schema.of("a:int", "b:float")
        s2 = Schema.of("a:int", "b:float")
        assert s1 == s2
        assert hash(s1) == hash(s2)
        assert [f.name for f in s1] == ["a", "b"]
        assert len(s1) == 2

    @given(st.lists(st.integers(min_value=-(2**62), max_value=2**62),
                    min_size=3, max_size=3))
    def test_coerce_roundtrips_ints(self, values):
        s = Schema.of("a:int", "b:int", "c:int")
        assert s.coerce_record(values) == tuple(values)

    def test_estimated_record_size(self):
        s = Schema.of("a:int", "b:string")
        assert s.estimated_record_size((1, "xy")) == 8 + 4 + 2
        assert s.estimated_record_size() == 8 + 4 + STRING.DEFAULT_ESTIMATE
