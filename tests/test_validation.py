"""Tests for repro.algebra.validation (static type checking)."""

import pytest

from repro.algebra import ast
from repro.algebra.parser import parse
from repro.algebra.validation import check, infer_scalar_type
from repro.errors import TypeCheckError
from repro.types import BOOL, FLOAT, INT, STRING, ListType, Schema

SCHEMA = Schema.of("t:int", "lat:float", "lon:float", "id:int", "name:string")
CATALOG = {"T": SCHEMA}


class TestScalarInference:
    def test_constants(self):
        assert infer_scalar_type(ast.Const(1), SCHEMA) is INT
        assert infer_scalar_type(ast.Const(1.5), SCHEMA) is FLOAT
        assert infer_scalar_type(ast.Const("x"), SCHEMA) is STRING
        assert infer_scalar_type(ast.Const(True), SCHEMA) is BOOL

    def test_field_ref(self):
        assert infer_scalar_type(ast.FieldRef("lat"), SCHEMA) is FLOAT
        with pytest.raises(TypeCheckError):
            infer_scalar_type(ast.FieldRef("nope"), SCHEMA)

    def test_comparison_compatible(self):
        c = ast.Comparison("<", ast.FieldRef("t"), ast.FieldRef("lat"))
        assert infer_scalar_type(c, SCHEMA) is BOOL

    def test_comparison_incompatible(self):
        c = ast.Comparison("=", ast.FieldRef("t"), ast.FieldRef("name"))
        with pytest.raises(TypeCheckError):
            infer_scalar_type(c, SCHEMA)

    def test_arith_promotes_to_float(self):
        expr = ast.Arith("+", ast.FieldRef("t"), ast.FieldRef("lat"))
        assert infer_scalar_type(expr, SCHEMA) is FLOAT

    def test_int_arith_stays_int(self):
        expr = ast.Arith("*", ast.FieldRef("t"), ast.Const(2))
        assert infer_scalar_type(expr, SCHEMA) is INT

    def test_division_always_float(self):
        expr = ast.Arith("/", ast.FieldRef("t"), ast.Const(2))
        assert infer_scalar_type(expr, SCHEMA) is FLOAT

    def test_arith_rejects_strings(self):
        expr = ast.Arith("+", ast.FieldRef("name"), ast.Const(1))
        with pytest.raises(TypeCheckError):
            infer_scalar_type(expr, SCHEMA)

    def test_logical_requires_bools(self):
        good = ast.Logical(
            "and",
            (
                ast.Comparison(">", ast.FieldRef("t"), ast.Const(0)),
                ast.Comparison("<", ast.FieldRef("t"), ast.Const(9)),
            ),
        )
        assert infer_scalar_type(good, SCHEMA) is BOOL
        bad = ast.Logical("and", (ast.FieldRef("t"), ast.Const(True)))
        with pytest.raises(TypeCheckError):
            infer_scalar_type(bad, SCHEMA)


class TestCheck:
    def test_table_ref(self):
        out = check(parse("T"), CATALOG)
        assert out.kind == "records"
        assert out.schema == SCHEMA

    def test_unknown_table(self):
        with pytest.raises(TypeCheckError):
            check(parse("U"), CATALOG)

    def test_project_narrows_schema(self):
        out = check(parse("project[lat, lon](T)"), CATALOG)
        assert out.schema.names() == ["lat", "lon"]

    def test_project_unknown_field(self):
        with pytest.raises(Exception):
            check(parse("project[bogus](T)"), CATALOG)

    def test_select_requires_boolean(self):
        check(parse("select[r.t > 5](T)"), CATALOG)
        with pytest.raises(TypeCheckError):
            check(parse("select[r.t + 5](T)"), CATALOG)

    def test_append_extends_schema(self):
        out = check(parse("append[t2=r.t * 2](T)"), CATALOG)
        assert out.schema.names()[-1] == "t2"
        assert out.schema.field("t2").dtype is INT

    def test_append_collision(self):
        with pytest.raises(TypeCheckError):
            check(parse("append[t=r.t](T)"), CATALOG)

    def test_fold_schema(self):
        out = check(parse("fold[lat, lon; id](T)"), CATALOG)
        assert out.kind == "folded"
        assert out.schema.names() == ["id", "__folded__"]
        assert isinstance(out.schema.field("__folded__").dtype, ListType)

    def test_unfold_restores(self):
        out = check(parse("unfold(fold[lat, lon; id](T))"), CATALOG)
        assert out.kind == "records"
        assert out.schema.names() == ["id", "lat", "lon"]

    def test_unfold_requires_folded(self):
        with pytest.raises(TypeCheckError):
            check(parse("unfold(T)"), CATALOG)

    def test_grid_requires_numeric_dims(self):
        out = check(parse("grid[lat, lon],[1, 1](T)"), CATALOG)
        assert out.kind == "grid"
        assert out.meta["grid"]["dims"] == ("lat", "lon")
        with pytest.raises(TypeCheckError):
            check(parse("grid[name],[1](T)"), CATALOG)
        with pytest.raises(TypeCheckError):
            check(parse("grid[bogus],[1](T)"), CATALOG)

    def test_zorder_sets_cell_order(self):
        out = check(parse("zorder(grid[lat, lon],[1, 1](T))"), CATALOG)
        assert out.meta["cell_order"] == "zorder"

    def test_zorder_on_records_rejected(self):
        with pytest.raises(TypeCheckError):
            check(parse("zorder(T)"), CATALOG)

    def test_hilbert_requires_2d_grid(self):
        check(parse("hilbert(grid[lat, lon],[1, 1](T))"), CATALOG)
        with pytest.raises(TypeCheckError):
            check(parse("hilbert(grid[lat],[1](T))"), CATALOG)
        with pytest.raises(TypeCheckError):
            check(parse("hilbert(T)"), CATALOG)

    def test_delta_requires_numeric_fields(self):
        out = check(parse("delta[lat](T)"), CATALOG)
        assert out.meta["delta_fields"] == ("lat",)
        with pytest.raises(TypeCheckError):
            check(parse("delta[name](T)"), CATALOG)
        with pytest.raises(TypeCheckError):
            check(parse("delta[bogus](T)"), CATALOG)

    def test_delta_no_fields_needs_nesting(self):
        check(parse("delta([1, 2, 3])"), {})
        with pytest.raises(TypeCheckError):
            check(parse("delta(T)"), CATALOG)

    def test_orderby_unknown_field(self):
        with pytest.raises(TypeCheckError):
            check(parse("orderby[bogus](T)"), CATALOG)

    def test_orderby_records_sort_keys(self):
        out = check(parse("orderby[t DESC](T)"), CATALOG)
        assert out.meta["sort_keys"] == (("t", False),)

    def test_prejoin_schema(self):
        catalog = {
            "A": Schema.of("k:int", "x:int"),
            "B": Schema.of("k:int", "y:float"),
        }
        out = check(parse("prejoin[k](A, B)"), catalog)
        assert out.schema.names() == ["k", "x", "k_2", "y"]

    def test_prejoin_missing_attr(self):
        catalog = {
            "A": Schema.of("k:int"),
            "B": Schema.of("j:int"),
        }
        with pytest.raises(TypeCheckError):
            check(parse("prejoin[k](A, B)"), catalog)

    def test_columns_groups_validated(self):
        out = check(parse("columns[[t, id], [lat]](T)"), CATALOG)
        assert out.kind == "columns"
        with pytest.raises(TypeCheckError):
            check(parse("columns[[t], [t]](T)"), CATALOG)
        with pytest.raises(TypeCheckError):
            check(parse("columns[[bogus]](T)"), CATALOG)

    def test_compress_unknown_codec(self):
        with pytest.raises(TypeCheckError):
            check(parse("compress[nope](T)"), CATALOG)

    def test_compress_accumulates_codecs(self):
        out = check(
            parse("compress[rle; id](compress[varint; t](T))"), CATALOG
        )
        assert out.meta["codecs"] == {("t",): "varint", ("id",): "rle"}

    def test_compress_field_checked(self):
        with pytest.raises(TypeCheckError):
            check(parse("compress[rle; bogus](T)"), CATALOG)

    def test_mirror(self):
        out = check(parse("mirror(rows(T), columns(T))"), CATALOG)
        assert out.kind == "mirror"
        assert out.meta["left"].kind == "records"

    def test_groupby_grouped_kind(self):
        out = check(parse("groupby[id](T)"), CATALOG)
        assert out.kind == "grouped"

    def test_project_preserves_grid_dims(self):
        with pytest.raises(TypeCheckError):
            check(parse("project[t](grid[lat, lon],[1, 1](T))"), CATALOG)

    def test_literal_is_nesting(self):
        out = check(parse("[[1, 2]]"), {})
        assert out.kind == "nesting"
        assert out.schema is None

    def test_transpose_gives_nesting(self):
        out = check(parse("transpose(T)"), CATALOG)
        assert out.kind == "nesting"

    def test_chunk(self):
        out = check(parse("chunk[2, 2]([[1, 2], [3, 4]])"), {})
        assert out.meta["chunk_shape"] == (2, 2)
