"""Tests for repro.types.values (φ flattening, shapes, sorting)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.types.values import (
    count_leaves,
    depth,
    flatten,
    iter_leaves,
    multisort,
    normalize,
    records_equal,
    shape,
    sort_key,
)

nested_ints = st.recursive(
    st.integers(-100, 100),
    lambda inner: st.lists(inner, max_size=4),
    max_leaves=20,
)


class TestFlatten:
    def test_paper_physical_representation(self):
        # φ recursively enumerates entries starting from the leftmost entry.
        assert flatten([[1, 2, 3], [12, 13, 14]]) == [1, 2, 3, 12, 13, 14]

    def test_deep_nesting(self):
        assert flatten([1, [2, [3, [4]]], 5]) == [1, 2, 3, 4, 5]

    def test_scalar(self):
        assert flatten(7) == [7]

    def test_empty(self):
        assert flatten([]) == []
        assert flatten([[], []]) == []

    def test_tuples_treated_as_nestings(self):
        assert flatten([(1, 2), (3, 4)]) == [1, 2, 3, 4]

    @given(nested_ints)
    def test_iter_leaves_agrees_with_flatten(self, nesting):
        assert list(iter_leaves(nesting)) == flatten(nesting)

    @given(nested_ints)
    def test_count_leaves_matches(self, nesting):
        assert count_leaves(nesting) == len(flatten(nesting))


class TestDepthAndShape:
    def test_depth(self):
        assert depth(1) == 0
        assert depth([1, 2]) == 1
        assert depth([[1], [2]]) == 2
        assert depth([]) == 1
        assert depth([1, [2]]) == 2

    def test_shape_rectangular(self):
        assert shape([[1, 2, 3], [4, 5, 6]]) == (2, 3)
        assert shape([1, 2]) == (2,)
        assert shape(5) == ()

    def test_shape_ragged_is_none(self):
        assert shape([[1], [2, 3]]) is None
        assert shape([[1, 2], 3]) is None

    def test_shape_3d(self):
        cube = [[[1, 2], [3, 4]], [[5, 6], [7, 8]]]
        assert shape(cube) == (2, 2, 2)


class TestSortKey:
    def test_single_ascending(self):
        rows = [(3, "c"), (1, "a"), (2, "b")]
        key = sort_key([0])
        assert sorted(rows, key=key) == [(1, "a"), (2, "b"), (3, "c")]

    def test_numeric_descending(self):
        rows = [(3,), (1,), (2,)]
        key = sort_key([0], [True])
        assert sorted(rows, key=key) == [(3,), (2,), (1,)]

    def test_multi_key(self):
        rows = [(1, 2), (1, 1), (0, 9)]
        key = sort_key([0, 1])
        assert sorted(rows, key=key) == [(0, 9), (1, 1), (1, 2)]


class TestMultisort:
    def test_mixed_directions(self):
        rows = [(1, "b"), (1, "a"), (2, "a")]
        out = multisort(rows, [0, 1], [False, True])
        assert out == [(1, "b"), (1, "a"), (2, "a")]

    def test_string_descending(self):
        rows = [("a",), ("c",), ("b",)]
        assert multisort(rows, [0], [True]) == [("c",), ("b",), ("a",)]

    def test_stability(self):
        rows = [(1, "x"), (1, "y"), (0, "z")]
        out = multisort(rows, [0])
        assert out == [(0, "z"), (1, "x"), (1, "y")]

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                    max_size=30))
    def test_matches_python_sorted(self, rows):
        assert multisort(rows, [0, 1]) == sorted(rows, key=lambda r: (r[0], r[1]))

    @given(st.lists(st.tuples(st.integers(0, 5), st.text(max_size=3)),
                    max_size=30))
    def test_descending_text_matches_double_sort(self, rows):
        out = multisort(rows, [0, 1], [False, True])
        expected = sorted(rows, key=lambda r: r[1], reverse=True)
        expected.sort(key=lambda r: r[0])
        assert out == expected


class TestEqualityHelpers:
    def test_records_equal_across_list_tuple(self):
        assert records_equal([1, [2, 3]], (1, (2, 3)))
        assert not records_equal([1, 2], [1, 2, 3])
        assert not records_equal([1, [2]], [1, [3]])

    def test_normalize(self):
        assert normalize((1, (2, 3))) == [1, [2, 3]]
        assert normalize(5) == 5

    @given(nested_ints)
    def test_normalize_preserves_leaves(self, nesting):
        assert flatten(normalize(nesting)) == flatten(nesting)
