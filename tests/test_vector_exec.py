"""Vectorized execution core: typed buffers, selection bitmaps, vector paths.

Edge cases the differential fuzz suite is unlikely to hit by chance:

* codec ``decode_buffer``/``decode_all``/``decode`` agreement on empty
  pages, single values, single-value runs, and mixed-sign integers;
* numpy-present vs numpy-absent parity (``repro.vector`` falls back to
  stdlib ``array`` — same values, only the container changes);
* all-null columns (only representable through ``RecordSerializer`` null
  bitmaps; single-field vector chunks reject ``None`` outright);
* ``ColumnBatch`` selection-bitmap semantics (select/project/head);
* ``Predicate.filter_vector`` ≡ ``filter_batch`` ≡ compiled closure,
  including the cases the vector path must *decline* (huge ints);
* whole-pipeline equivalence with ``store.vectorized`` toggled, and the
  ``RodentStore(batch_rows=...)`` knob.
"""

import math

import pytest

from repro import vector
from repro.compression import get_codec
from repro.compression.base import CodecError
from repro.engine.database import RodentStore
from repro.errors import SerializationError, StorageError
from repro.query.executor import Aggregate, QuerySpec, execute
from repro.query.expressions import And, Not, Or, Range, Rect
from repro.query.plan import JoinClause
from repro.storage.serializer import RecordSerializer, VectorSerializer
from repro.types import Schema
from repro.types.types import FLOAT, INT, STRING


# ---------------------------------------------------------------------------
# Codec decode paths: decode == decode_all == decode_buffer (as values)


INT_CASES = {
    "empty": [],
    "single": [7],
    "single_negative": [-9223372036854775000],
    "run": [3] * 257,
    "mixed_sign": [(-1) ** i * (i * i) for i in range(100)],
    "wide": [0, 1, -1, 2**40, -(2**40), 2**62, -(2**62)],
}

FLOAT_CASES = {
    "empty": [],
    "single": [7.5],
    "run": [-0.25] * 64,
    "mixed_sign": [((-1) ** i) * i * 0.37 for i in range(100)],
    "special": [0.0, -0.0, 1e300, -1e-300, math.pi, float("inf")],
}

#: codec name -> (dtype, cases valid for that codec)
CODEC_CASES = {
    "none": (INT, INT_CASES),
    "varint": (INT, INT_CASES),
    "delta": (INT, INT_CASES),
    "rle": (INT, INT_CASES),
    "dict": (INT, INT_CASES),
    "lz": (INT, INT_CASES),
    "for": (INT, INT_CASES),
    # bitpack stores non-negative ints only (frame-of-reference adds the
    # sign handling on top of it).
    "bitpack": (
        INT,
        {
            "empty": [],
            "single": [7],
            "run": [3] * 257,
            "zeros": [0] * 100,
            "wide": [0, 1, 2**40, 2**62],
        },
    ),
    "xor": (FLOAT, FLOAT_CASES),
}


def _codec_case_params():
    for codec_name, (dtype, cases) in CODEC_CASES.items():
        for case_name, values in cases.items():
            yield pytest.param(
                codec_name, dtype, values, id=f"{codec_name}-{case_name}"
            )


@pytest.mark.parametrize("codec_name,dtype,values", _codec_case_params())
def test_codec_decode_paths_agree(codec_name, dtype, values):
    codec = get_codec(codec_name)
    data = codec.encode(values, dtype)
    reference = codec.decode(data, dtype)
    assert reference == values
    assert codec.decode_all(data, dtype) == values
    assert vector.to_list(codec.decode_buffer(data, dtype)) == values


@pytest.mark.parametrize("codec_name,dtype,values", _codec_case_params())
def test_codec_decode_buffer_numpy_absent_parity(codec_name, dtype, values):
    """decode_buffer is behavior-identical with numpy switched off."""
    codec = get_codec(codec_name)
    data = codec.encode(values, dtype)
    with_numpy = vector.to_list(codec.decode_buffer(data, dtype))
    prev = vector.set_numpy_enabled(False)
    try:
        fallback = codec.decode_buffer(data, dtype)
        np = vector.numpy_module()
        if np is not None:
            assert not isinstance(fallback, np.ndarray)
        assert vector.to_list(fallback) == with_numpy == values
    finally:
        vector.set_numpy_enabled(prev)


def test_bitpack_rejects_negative_values():
    with pytest.raises(CodecError):
        get_codec("bitpack").encode([3, -1, 5], INT)


def test_xor_rejects_integer_dtype():
    with pytest.raises(CodecError):
        get_codec("xor").encode([1.0, 2.0], INT)


def test_decoded_values_are_native_python():
    """numpy scalars must never leak out of the typed-buffer paths."""
    codec = get_codec("delta")
    data = codec.encode([5, 6, 7], INT)
    for value in vector.to_list(codec.decode_buffer(data, INT)):
        assert type(value) is int


# ---------------------------------------------------------------------------
# Nulls: vector chunks refuse them; record null bitmaps carry them.


def test_vector_serializer_has_no_null_path():
    with pytest.raises(SerializationError):
        VectorSerializer(INT).encode([1, None, 3])


def test_record_serializer_all_null_column_roundtrip():
    schema = Schema.of("a:int", "b:float", "c:string")
    ser = RecordSerializer(schema)
    records = [(None, None, None) for _ in range(17)]
    blobs = [ser.encode(r) for r in records]
    assert [ser.decode(b) for b in blobs] == records
    assert ser.decode_many(blobs) == records


def test_record_serializer_mixed_null_column_roundtrip():
    schema = Schema.of("a:int", "b:float")
    ser = RecordSerializer(schema)
    records = [
        (i if i % 3 else None, None if i % 2 else i * 0.5) for i in range(40)
    ]
    blobs = [ser.encode(r) for r in records]
    assert ser.decode_many(blobs) == records


# ---------------------------------------------------------------------------
# ColumnBatch selection semantics


from repro.layout.renderer import ColumnBatch  # noqa: E402


def _typed_batch():
    cols = [
        vector.from_values(list(range(10)), "q"),
        vector.from_values([i * 0.5 for i in range(10)], "d"),
    ]
    return ColumnBatch.from_columns(("a", "b"), cols)


def test_column_batch_select_then_resolve():
    batch = _typed_batch()
    mask = [i % 2 == 0 for i in range(10)]
    selected = batch.select(mask)
    assert selected.n_rows == 5
    assert selected.rows() == [(i, i * 0.5) for i in range(0, 10, 2)]
    # the parent batch is untouched
    assert batch.n_rows == 10 and len(batch.rows()) == 10


def test_column_batch_selection_rides_through_projection():
    batch = _typed_batch().select([i >= 7 for i in range(10)])
    projected = batch.project_columns([1], ("b",))
    assert projected.fields == ("b",)
    assert projected.rows() == [(7 * 0.5,), (8 * 0.5,), (9 * 0.5,)]


def test_column_batch_head_after_selection():
    batch = _typed_batch().select([i % 3 == 0 for i in range(10)])
    assert batch.head(2).rows() == [(0, 0.0), (3, 1.5)]
    assert batch.head(99) is batch


def test_column_batch_empty_selection():
    batch = _typed_batch().select([False] * 10)
    assert batch.n_rows == 0
    assert batch.rows() == []
    assert list(batch.iter_rows()) == []


def test_column_batch_iter_rows_matches_rows():
    batch = _typed_batch().select([i in (1, 4, 9) for i in range(10)])
    assert list(batch.iter_rows()) == batch.rows()
    assert list(batch.column_map()) == ["a", "b"]
    assert vector.to_list(batch.column_map()["a"]) == [1, 4, 9]


def test_column_batch_from_rows_is_row_backed():
    batch = ColumnBatch.from_rows(("a",), [(1,), (2,)])
    assert not batch.is_columnar
    assert batch.rows() == [(1,), (2,)]


# ---------------------------------------------------------------------------
# Predicate.filter_vector ≡ filter_batch ≡ compiled closure


PREDICATES = [
    Range("a", 2, 7),
    Range("a", hi=4),
    Range("a", lo=5),
    Range("a", 2.5, 6.5),  # float bounds over an int column
    Rect({"a": (1, 8), "b": (0.5, 3.0)}),
    And(Range("a", 0, 9), Not(Range("a", 3, 5))),
    Or(Range("a", -100, 1), Range("b", 4.0, 100.0)),
    Not(Or(Range("a", 0, 2), Range("a", 8, 100))),
]


def _predicate_columns():
    a = list(range(-3, 12))
    b = [i * 0.5 for i in range(len(a))]
    return {"a": vector.from_values(a, "q"), "b": vector.from_values(b, "d")}


@pytest.mark.parametrize(
    "predicate", PREDICATES, ids=[repr(p) for p in PREDICATES]
)
def test_filter_vector_matches_row_paths(predicate):
    columns = _predicate_columns()
    n = len(vector.to_list(columns["a"]))
    used = sorted(predicate.fields_used())
    fn = predicate.compile({name: i for i, name in enumerate(used)})
    expected = [
        bool(fn(record))
        for record in zip(*(vector.to_list(columns[f]) for f in used))
    ]
    batch_mask = [bool(v) for v in predicate.filter_batch(columns, n)]
    assert batch_mask == expected
    bitmap = predicate.filter_vector(columns, n)
    if bitmap is not None:
        assert [bool(v) for v in vector.to_list(bitmap)] == expected


def test_filter_vector_agrees_on_plain_lists():
    """Row-backed batches hand plain lists to the predicate layer."""
    columns = {"a": list(range(-3, 12)), "b": [i * 0.5 for i in range(15)]}
    predicate = And(Range("a", 0, 9), Range("b", 1.0, 5.0))
    expected = [bool(v) for v in predicate.filter_batch(columns, 15)]
    bitmap = predicate.filter_vector(columns, 15)
    if bitmap is not None:
        assert [bool(v) for v in vector.to_list(bitmap)] == expected


def test_filter_vector_huge_bounds_stay_correct():
    """Bounds beyond int64 must either decline or stay exact."""
    columns = {"a": vector.from_values([0, 2**62, -(2**62)], "q")}
    predicate = Range("a", -(2**70), 2**70)
    bitmap = predicate.filter_vector(columns, 3)
    if bitmap is not None:
        assert [bool(v) for v in vector.to_list(bitmap)] == [True] * 3
    assert [bool(v) for v in predicate.filter_batch(columns, 3)] == [True] * 3


# ---------------------------------------------------------------------------
# Whole-pipeline equivalence: store.vectorized on/off, batch_rows knob


SCHEMA = Schema.of("t:int", "x:int", "y:float", "g:int")
DIM_SCHEMA = Schema.of("g:int", "label:string")


def _records(n=500):
    return [
        (i, (i * 7) % 53 - 26, ((i * 13) % 89) * 0.25, i % 5)
        for i in range(n)
    ]


def _build_store(**kwargs):
    store = RodentStore(page_size=2048, pool_capacity=128, **kwargs)
    store.create_table("T", SCHEMA, layout="columns(T)")
    store.create_table("G", SCHEMA, layout="columns[[t, g], [x, y]](G)")
    store.create_table("D", DIM_SCHEMA, layout="D")
    store.load("T", _records())
    store.load("G", _records())
    store.load("D", [(i, f"group-{i}") for i in range(5)])
    return store


QUERIES = [
    QuerySpec(table="T"),
    QuerySpec(table="T", fieldlist=("x", "t"), predicate=Range("x", 0, 20)),
    QuerySpec(table="T", predicate=Range("y", 2.5, 11.0), limit=17),
    QuerySpec(
        table="T",
        group_by=("g",),
        aggregates=(
            Aggregate("count"),
            Aggregate("sum", "x"),
            Aggregate("sum", "y"),
            Aggregate("min", "x"),
            Aggregate("max", "y"),
            Aggregate("avg", "x"),
        ),
    ),
    QuerySpec(
        table="T",
        group_by=("g", "x"),
        aggregates=(Aggregate("count"), Aggregate("sum", "t")),
        predicate=Range("t", 10, 400),
    ),
    QuerySpec(
        table="T",
        aggregates=(Aggregate("sum", "x"), Aggregate("avg", "y")),
    ),
    QuerySpec(
        table="T",
        fieldlist=("t", "x", "label"),
        joins=(JoinClause("D", (("g", "g"),)),),
        predicate=Range("t", 0, 99),
    ),
]


@pytest.fixture(scope="module")
def store():
    return _build_store()


@pytest.mark.parametrize("base", ["T", "G"])
def test_vectorized_toggle_preserves_answers(store, base):
    for spec in QUERIES:
        spec = QuerySpec(**{**spec.__dict__, "table": base})
        table = store.table(spec.table)
        store.vectorized = True
        vectorized = execute(table, spec)
        store.vectorized = False
        try:
            rowwise = execute(table, spec)
        finally:
            store.vectorized = True
        if spec.limit is None and not spec.order:
            assert vectorized == rowwise, spec
        else:
            assert sorted(map(repr, vectorized)) == sorted(
                map(repr, rowwise)
            ), spec


def test_vectorized_scan_matches_reference(store):
    table = store.table("T")
    expected = list(table.scan_reference())
    assert list(table.scan()) == expected
    store.vectorized = False
    try:
        assert list(table.scan()) == expected
    finally:
        store.vectorized = True


@pytest.mark.parametrize("batch_rows", [1, 7, 256, 100_000])
def test_batch_rows_knob_preserves_scans(batch_rows):
    store = _build_store(batch_rows=batch_rows)
    table = store.table("T")
    assert list(table.scan()) == list(table.scan_reference())
    spec = QUERIES[3]
    assert execute(table, spec) == execute(_build_store().table("T"), spec)


def test_batch_rows_must_be_positive():
    with pytest.raises(StorageError):
        RodentStore(batch_rows=0)


def test_pipeline_numpy_absent_parity():
    """The whole stack answers identically with numpy unavailable."""
    baseline_store = _build_store()
    baseline = [
        execute(baseline_store.table("T"), spec) for spec in QUERIES
    ]
    prev = vector.set_numpy_enabled(False)
    try:
        store = _build_store()
        table = store.table("T")
        assert list(table.scan()) == list(table.scan_reference())
        for spec, expected in zip(QUERIES, baseline):
            got = execute(table, spec)
            if spec.limit is None and not spec.order:
                assert got == expected, spec
            else:
                assert sorted(map(repr, got)) == sorted(map(repr, expected))
    finally:
        vector.set_numpy_enabled(prev)


class _StubOp:
    """A leaf operator replaying fixed batches (for operator-level tests)."""

    est_rows = 0.0

    def __init__(self, fields, batches):
        self.fields = tuple(fields)
        self._batches = list(batches)

    def batches(self):
        return iter(self._batches)


def _group_op(batches, keys, aggregates):
    from repro.query.operators import GroupByOp

    return GroupByOp(_StubOp(("g", "v"), batches), keys, aggregates)


def test_group_by_non_finite_floats_match_row_path():
    """NaN/inf in a measure column must not change aggregate answers."""
    values = [1.0, float("nan"), 2.5, float("inf"), -3.25, 4.0,
              float("nan"), 0.5]
    cols = [
        vector.from_values([i % 3 for i in range(len(values))], "q"),
        vector.from_values(values, "d"),
    ]
    aggs = (Aggregate("count"), Aggregate("sum", "v"), Aggregate("min", "v"))

    columnar = _group_op(
        [ColumnBatch.from_columns(("g", "v"), cols)], ("g",), aggs
    ).rows()
    rowwise = _group_op(
        [ColumnBatch.from_rows(
            ("g", "v"), list(zip(vector.to_list(cols[0]), values))
        )],
        ("g",),
        aggs,
    ).rows()
    assert len(columnar) == len(rowwise) == 3
    for a, b in zip(columnar, rowwise):
        assert repr(a) == repr(b)  # NaN-safe comparison


def test_group_by_vector_path_matches_rows_on_clean_floats():
    n = 200
    g = [i % 7 for i in range(n)]
    v = [((i * 31) % 97) * 0.125 - 3.0 for i in range(n)]
    cols = [vector.from_values(g, "q"), vector.from_values(v, "d")]
    aggs = (
        Aggregate("count"),
        Aggregate("sum", "v"),
        Aggregate("avg", "v"),
        Aggregate("min", "v"),
        Aggregate("max", "v"),
    )
    columnar = _group_op(
        [ColumnBatch.from_columns(("g", "v"), cols)], ("g",), aggs
    ).rows()
    rowwise = _group_op(
        [ColumnBatch.from_rows(("g", "v"), list(zip(g, v)))], ("g",), aggs
    ).rows()
    # bit-for-bit, including float rounding and first-seen group order
    assert repr(columnar) == repr(rowwise)
