"""Tests for repro.storage.wal (logging and recovery)."""

import pytest

from repro.errors import WALError
from repro.storage.disk import DiskManager
from repro.storage.wal import (
    KIND_ABORT,
    KIND_BEGIN,
    KIND_COMMIT,
    KIND_UPDATE,
    LogRecord,
    WriteAheadLog,
    recover,
)


class TestLogRecords:
    def test_encode_decode_update(self):
        record = LogRecord(KIND_UPDATE, 5, 2, page_id=7, offset=16,
                           before=b"aa", after=b"bb")
        decoded, end = LogRecord.decode(record.encode(), 0)
        assert decoded.kind == KIND_UPDATE
        assert decoded.lsn == 5
        assert decoded.txn_id == 2
        assert decoded.page_id == 7
        assert decoded.offset == 16
        assert decoded.before == b"aa"
        assert decoded.after == b"bb"
        assert end == len(record.encode())

    def test_image_length_mismatch(self):
        record = LogRecord(KIND_UPDATE, 1, 1, before=b"a", after=b"bb")
        with pytest.raises(WALError):
            record.encode()

    def test_torn_record_detected(self):
        record = LogRecord(KIND_COMMIT, 1, 1)
        data = record.encode()[:-2]
        with pytest.raises(WALError):
            LogRecord.decode(data, 0)


class TestWriteAheadLog:
    def test_append_assigns_lsns(self):
        wal = WriteAheadLog()
        assert wal.append(KIND_BEGIN, 1) == 1
        assert wal.append(KIND_COMMIT, 1) == 2

    def test_records_iteration(self):
        wal = WriteAheadLog()
        wal.append(KIND_BEGIN, 1)
        wal.append(KIND_UPDATE, 1, page_id=0, offset=0, before=b"x", after=b"y")
        wal.append(KIND_COMMIT, 1)
        kinds = [r.kind for r in wal.records()]
        assert kinds == [KIND_BEGIN, KIND_UPDATE, KIND_COMMIT]

    def test_torn_tail_ignored(self):
        wal = WriteAheadLog()
        wal.append(KIND_BEGIN, 1)
        wal.append(KIND_COMMIT, 1)
        wal._buffer.extend(b"\x10\x00\x00\x00garbage")
        assert len(list(wal.records())) == 2

    def test_truncate(self):
        wal = WriteAheadLog()
        wal.append(KIND_BEGIN, 1)
        wal.truncate()
        assert list(wal.records()) == []

    def test_file_backed_persistence(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append(KIND_BEGIN, 3)
        wal.append(KIND_COMMIT, 3)
        wal.flush()
        wal.close()
        wal2 = WriteAheadLog(path)
        assert [r.txn_id for r in wal2.records()] == [3, 3]
        # LSNs continue after the existing maximum.
        assert wal2.append(KIND_BEGIN, 4) == 3
        wal2.close()


def _page_with(disk: DiskManager, content: bytes) -> int:
    page_id = disk.allocate_page()
    page = disk.read_page(page_id)
    page[: len(content)] = content
    disk.write_page(page_id, page)
    return page_id


class TestRecovery:
    def test_redo_committed(self):
        disk = DiskManager(page_size=128)
        page_id = _page_with(disk, b"old!")
        wal = WriteAheadLog()
        wal.append(KIND_BEGIN, 1)
        wal.append(KIND_UPDATE, 1, page_id=page_id, offset=0,
                   before=b"old!", after=b"new!")
        wal.append(KIND_COMMIT, 1)
        summary = recover(wal, disk)
        assert summary["committed"] == 1
        assert summary["redo"] == 1
        assert bytes(disk.read_page(page_id)[:4]) == b"new!"

    def test_undo_uncommitted(self):
        disk = DiskManager(page_size=128)
        page_id = _page_with(disk, b"new!")  # crash left new bytes on disk
        wal = WriteAheadLog()
        wal.append(KIND_BEGIN, 1)
        wal.append(KIND_UPDATE, 1, page_id=page_id, offset=0,
                   before=b"old!", after=b"new!")
        summary = recover(wal, disk)
        assert summary["in_flight"] == 1
        assert summary["undo"] == 1
        assert bytes(disk.read_page(page_id)[:4]) == b"old!"

    def test_aborted_transaction_undone(self):
        disk = DiskManager(page_size=128)
        page_id = _page_with(disk, b"mid!")
        wal = WriteAheadLog()
        wal.append(KIND_BEGIN, 1)
        wal.append(KIND_UPDATE, 1, page_id=page_id, offset=0,
                   before=b"old!", after=b"mid!")
        wal.append(KIND_ABORT, 1)
        summary = recover(wal, disk)
        assert summary["aborted"] == 1
        assert bytes(disk.read_page(page_id)[:4]) == b"old!"

    def test_mixed_transactions(self):
        disk = DiskManager(page_size=128)
        p1 = _page_with(disk, b"aaaa")
        p2 = _page_with(disk, b"bbXX")  # txn2's partial write survived
        wal = WriteAheadLog()
        wal.append(KIND_BEGIN, 1)
        wal.append(KIND_UPDATE, 1, page_id=p1, offset=0,
                   before=b"aaaa", after=b"AAAA")
        wal.append(KIND_COMMIT, 1)
        wal.append(KIND_BEGIN, 2)
        wal.append(KIND_UPDATE, 2, page_id=p2, offset=2,
                   before=b"bb", after=b"XX")
        summary = recover(wal, disk)
        assert bytes(disk.read_page(p1)[:4]) == b"AAAA"
        assert bytes(disk.read_page(p2)[:4]) == b"bbbb"
        assert summary["committed"] == 1
        assert summary["in_flight"] == 1

    def test_undo_applied_in_reverse_order(self):
        disk = DiskManager(page_size=128)
        page_id = _page_with(disk, b"cccc")
        wal = WriteAheadLog()
        wal.append(KIND_BEGIN, 1)
        wal.append(KIND_UPDATE, 1, page_id=page_id, offset=0,
                   before=b"aaaa", after=b"bbbb")
        wal.append(KIND_UPDATE, 1, page_id=page_id, offset=0,
                   before=b"bbbb", after=b"cccc")
        recover(wal, disk)
        assert bytes(disk.read_page(page_id)[:4]) == b"aaaa"

    def test_recovery_allocates_missing_pages(self):
        disk = DiskManager(page_size=128)
        wal = WriteAheadLog()
        wal.append(KIND_BEGIN, 1)
        wal.append(KIND_UPDATE, 1, page_id=2, offset=0,
                   before=b"\x00\x00", after=b"zz")
        wal.append(KIND_COMMIT, 1)
        recover(wal, disk)
        assert disk.num_pages >= 3
        assert bytes(disk.read_page(2)[:2]) == b"zz"
