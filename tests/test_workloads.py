"""Tests for repro.workloads (synthetic data generators)."""

from repro.types.values import multisort
from repro.workloads import (
    BOSTON,
    SALES_SCHEMA,
    TIMESERIES_SCHEMA,
    TRACE_SCHEMA,
    generate_sales,
    generate_timeseries,
    generate_traces,
    grid_strides_for,
    narrow_column_queries,
    random_region_queries,
    series_column,
    trajectories,
    trajectory_mbrs,
    year_zip_queries,
)


class TestCartel:
    def test_schema_conformance(self):
        records = generate_traces(500, n_vehicles=5)
        assert len(records) == 500
        for record in records[:50]:
            assert TRACE_SCHEMA.validate_record(record)

    def test_deterministic(self):
        a = generate_traces(300, seed=9)
        b = generate_traces(300, seed=9)
        assert a == b
        c = generate_traces(300, seed=10)
        assert a != c

    def test_points_inside_region(self):
        records = generate_traces(1000, n_vehicles=8)
        for r in records:
            assert BOSTON.lat_min <= r[1] <= BOSTON.lat_max
            assert BOSTON.lon_min <= r[2] <= BOSTON.lon_max

    def test_timestamps_interleaved_across_vehicles(self):
        records = generate_traces(100, n_vehicles=10)
        assert [r[0] for r in records[:10]] == [0] * 10
        assert [r[0] for r in records[10:20]] == [1] * 10

    def test_small_deltas_within_trajectory(self):
        """The property delta compression relies on: consecutive points of a
        trajectory differ by small integers."""
        records = generate_traces(4000, n_vehicles=4, trip_length=500)
        for points in trajectories(records).values():
            for a, b in zip(points, points[1:]):
                assert abs(b[1] - a[1]) < 1000
                assert abs(b[2] - a[2]) < 1000

    def test_trip_segmentation(self):
        records = generate_traces(3000, n_vehicles=3, trip_length=200)
        trips = trajectories(records)
        assert len(trips) >= 3 * (1000 // 200 - 1)
        for points in trips.values():
            assert len(points) <= 200 + 1

    def test_trajectory_mbrs_cover_points(self):
        records = generate_traces(1000, n_vehicles=5, trip_length=100)
        boxes = dict(trajectory_mbrs(records))
        for trip, points in trajectories(records).items():
            lat_min, lat_max, lon_min, lon_max = boxes[trip]
            for p in points:
                assert lat_min <= p[1] <= lat_max
                assert lon_min <= p[2] <= lon_max

    def test_trajectory_mbrs_stack_over_the_core(self):
        """The Figure 2 R-tree pathology: a small central query intersects a
        large fraction of trajectory bounding boxes, each of which costs
        random I/O and drags in all of its observations."""
        records = generate_traces(8000, n_vehicles=8, trip_length=300)
        boxes = [b for _, b in trajectory_mbrs(records)]
        mid_lat = (BOSTON.lat_min + BOSTON.lat_max) // 2
        mid_lon = (BOSTON.lon_min + BOSTON.lon_max) // 2
        half_lat = BOSTON.lat_span // 20  # 10% per side = 1% of area
        half_lon = BOSTON.lon_span // 20
        q = (
            mid_lat - half_lat, mid_lat + half_lat,
            mid_lon - half_lon, mid_lon + half_lon,
        )
        hits = sum(
            1
            for a in boxes
            if not (a[1] < q[0] or q[1] < a[0] or a[3] < q[2] or q[3] < a[2])
        )
        assert hits / len(boxes) > 0.1

    def test_queries_cover_fraction(self):
        queries = random_region_queries(50, coverage=0.01)
        for q in queries:
            ranges = q.ranges()
            lat_span = ranges["lat"][1] - ranges["lat"][0]
            lon_span = ranges["lon"][1] - ranges["lon"][0]
            area = lat_span * lon_span
            assert abs(area / BOSTON.area - 0.01) < 0.002

    def test_queries_inside_region(self):
        for q in random_region_queries(50):
            ranges = q.ranges()
            assert ranges["lat"][0] >= BOSTON.lat_min
            assert ranges["lat"][1] <= BOSTON.lat_max

    def test_grid_strides(self):
        lat_stride, lon_stride = grid_strides_for(BOSTON, cells_per_side=32)
        assert lat_stride * 32 >= BOSTON.lat_span
        assert lon_stride * 32 >= BOSTON.lon_span


class TestSales:
    def test_schema_conformance(self):
        records = generate_sales(500)
        assert len(records) == 500
        for record in records[:50]:
            assert SALES_SCHEMA.validate_record(record)

    def test_deterministic(self):
        assert generate_sales(200, seed=4) == generate_sales(200, seed=4)

    def test_years_in_range(self):
        records = generate_sales(500, years=(2001, 2003))
        assert {r[1] for r in records} <= {2001, 2002, 2003}

    def test_zipcodes_clustered_by_metro(self):
        records = generate_sales(2000)
        zips = sorted({r[0] for r in records})
        # Each zip is within 100 of one of the metro bases.
        from repro.workloads.sales import _METRO_BASES

        for z in zips:
            assert any(base <= z < base + 100 for base in _METRO_BASES)

    def test_product_popularity_skewed(self):
        records = generate_sales(5000, n_products=100)
        from collections import Counter

        counts = Counter(r[5] for r in records)
        top = sum(v for _, v in counts.most_common(10))
        assert top > len(records) * 0.3  # Zipf-ish head

    def test_year_zip_queries_shape(self):
        for q in year_zip_queries(20):
            ranges = q.ranges()
            assert ranges["year"][0] == ranges["year"][1]
            assert ranges["zipcode"][1] - ranges["zipcode"][0] == 50

    def test_narrow_column_queries(self):
        specs = narrow_column_queries()
        assert all(len(fields) <= 2 for fields, _ in specs)


class TestTimeseries:
    def test_schema_conformance(self):
        records = generate_timeseries(300)
        for record in records[:30]:
            assert TIMESERIES_SCHEMA.validate_record(record)

    def test_kinds_differ_in_compressibility(self):
        from repro.compression import get_codec
        from repro.types import INT

        n = 2000
        codec = get_codec("delta")
        sizes = {}
        for kind in ("smooth", "steppy", "noisy"):
            records = generate_timeseries(n, n_series=1, kind=kind)
            column = series_column(records, 0)
            sizes[kind] = len(codec.encode(column, INT))
        assert sizes["smooth"] < sizes["noisy"]
        rle = get_codec("rle")
        steppy = series_column(
            generate_timeseries(n, n_series=1, kind="steppy"), 0
        )
        noisy = series_column(
            generate_timeseries(n, n_series=1, kind="noisy"), 0
        )
        from repro.types import INT as INT_T

        assert len(rle.encode(steppy, INT_T)) < len(rle.encode(noisy, INT_T))

    def test_series_column_time_ordered(self):
        records = generate_timeseries(500, n_series=4)
        per_series = [r for r in records if r[0] == 2]
        assert [r[1] for r in per_series] == sorted(r[1] for r in per_series)
